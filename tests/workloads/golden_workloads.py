"""Frozen scan and streaming workloads behind the golden workload traces.

ISSUE acceptance bar for the workload suite: a same-seed pushdown scan and
a same-seed windowed-streaming run must each export a **byte-identical**
trace — same events, same virtual timestamps, same JSON serialization —
on every run.  This module pins both:

* ``golden_scan_trace.jsonl`` — a traced pushdown scan (count aggregate
  with a selective predicate) over a fixed seeded table;
* ``golden_stream_trace.jsonl`` — a traced overlapping-window streaming
  run with one refired late straggler.

Everything here must stay importable at the stable module path
``tests.workloads.golden_workloads`` so the shipped functions pickle by
reference with deterministic bytes; regenerate (only for an intentional,
documented behaviour change) with::

    PYTHONPATH=src:. python -c \
        "from tests.workloads.golden_workloads import write_golden; write_golden()"
"""

from __future__ import annotations

import os

SEED = 123
GOLDEN_SCAN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_scan_trace.jsonl"
)
GOLDEN_STREAM_PATH = os.path.join(
    os.path.dirname(__file__), "golden_stream_trace.jsonl"
)

#: scan workload shape
SCAN_ROWS = 1_600
SCAN_CITIES = 3
SCAN_ROWS_PER_GROUP = 32
SCAN_EXPECTED_COUNT = 104

#: streaming workload shape
STREAM_OBJECTS = 8
STREAM_PERIOD_S = 10.0
STREAM_WINDOW_S = 40.0
STREAM_SLIDE_S = 20.0


def window_sum(payload):
    return sum(payload)


def sum_partials(parts):
    return sum(parts)


def run_scan_traced() -> str:
    """One traced same-seed pushdown scan; executor id normalized."""
    import repro as pw

    env = pw.CloudEnvironment.create(seed=SEED, trace=True)
    info = pw.load_table(
        env.storage,
        total_rows=SCAN_ROWS,
        n_cities=SCAN_CITIES,
        rows_per_group=SCAN_ROWS_PER_GROUP,
    )
    spec = pw.ScanSpec(
        columns=("id",),
        predicate=(pw.Col("day") < 60) & (pw.Col("price") < 200),
        aggregate="count",
    )

    def main():
        executor = pw.ibm_cf_executor()
        result = pw.scan(executor, info, spec)
        return result, executor.executor_id, executor.trace_jsonl()

    result, executor_id, jsonl = env.run(main)
    assert result.value == SCAN_EXPECTED_COUNT, "golden scan result drifted"
    assert result.groups_pruned > 0, "golden scan stopped pruning"
    return jsonl.replace(executor_id, "EXEC")


def run_stream_traced() -> str:
    """One traced same-seed streaming run; executor id normalized."""
    import repro as pw

    env = pw.CloudEnvironment.create(seed=SEED, trace=True)
    source = pw.StreamSource.synthetic(
        STREAM_OBJECTS,
        STREAM_PERIOD_S,
        seed=SEED,
        jitter_s=2.0,
        late_every=5,
        late_by_s=45.0,
    )

    def main():
        executor = pw.ibm_cf_executor()
        windows = pw.windowed_map_reduce(
            executor,
            source,
            window_sum,
            sum_partials,
            window_s=STREAM_WINDOW_S,
            slide_s=STREAM_SLIDE_S,
            late_policy="refire",
        )
        return windows, executor.executor_id, executor.trace_jsonl()

    windows, executor_id, jsonl = env.run(main)
    assert any(w.revision > 0 for w in windows), "golden stream lost its refire"
    assert sum(w.reused_partials for w in windows) > 0, (
        "golden stream stopped reusing partials"
    )
    return jsonl.replace(executor_id, "EXEC")


def write_golden() -> None:
    """(Re)generate the committed goldens.  Intentional changes only."""
    for path, run in (
        (GOLDEN_SCAN_PATH, run_scan_traced),
        (GOLDEN_STREAM_PATH, run_stream_traced),
    ):
        jsonl = run()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(jsonl)
        print(f"wrote {path} ({len(jsonl.splitlines())} events)")
