"""The frozen workload behind the pre-refactor golden exchange trace.

The exchange-backend refactor (ROADMAP item 4) rewired every intermediate
read/write in ``InternalStorage`` through an :class:`~repro.exchange.base.
ExchangeBackend`.  Its acceptance bar: with ``ExchangeConfig`` unset, a
same-seed run must produce a **byte-identical** trace export to the
pre-refactor code.  This module pins that bar:

* ``golden_trace_default_exchange.jsonl`` was generated *before* the
  refactor landed, from the then-current COS-only intermediate path, by
  ``run_traced()`` below (see ``write_golden``).
* ``test_golden_regression.py`` re-runs the identical workload on every
  test run and asserts the export still matches the committed bytes.

The workload is a traced ``map_reduce_shuffle`` wordcount — it exercises
shuffle-partition writes/reads and result blobs (the two intermediate
kinds the backend owns) plus the DAG-ridden reducers, at a fixed seed.

Everything here must stay importable at the stable module path
``tests.exchange.golden_workload`` so the shipped functions pickle by
reference with deterministic bytes; regenerate (only for an intentional,
documented behaviour change) with::

    PYTHONPATH=src:. python -c \
        "from tests.exchange.golden_workload import write_golden; write_golden()"
"""

from __future__ import annotations

import os

SEED = 123
N_DOCS = 10
N_REDUCERS = 3
GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_trace_default_exchange.jsonl"
)


def word_pairs(text):
    return [(word, 1) for word in text.split()]


def count_values(key, values):
    del key
    return sum(values)


def docs() -> list[str]:
    words = ["cloud", "serverless", "shuffle", "exchange", "cos", "vm"]
    return [
        " ".join(words[(i + j) % len(words)] for j in range(18 + i))
        for i in range(N_DOCS)
    ]


def expected_counts() -> dict[str, int]:
    counts: dict[str, int] = {}
    for doc in docs():
        for word in doc.split():
            counts[word] = counts.get(word, 0) + 1
    return counts


def run_traced() -> str:
    """One traced same-seed wordcount on the *default* environment.

    Returns the exported trace JSONL with the executor id normalized to
    ``EXEC`` (the id embeds a per-process serial; everything else in the
    export is a pure function of the seed).
    """
    import repro as pw
    from repro.core.environment import CloudEnvironment
    from repro.core.shuffle import merge_shuffle_results

    env = CloudEnvironment.create(seed=SEED, trace=True)

    def main():
        executor = pw.ibm_cf_executor()
        reducers = executor.map_reduce_shuffle(
            word_pairs, docs(), count_values, n_reducers=N_REDUCERS
        )
        merged = merge_shuffle_results(executor.get_result(reducers))
        return merged, executor.executor_id, executor.trace_jsonl()

    merged, executor_id, jsonl = env.run(main)
    assert merged == expected_counts(), "golden workload result drifted"
    return jsonl.replace(executor_id, "EXEC")


def write_golden() -> str:
    """(Re)generate the committed golden trace.  Intentional changes only."""
    jsonl = run_traced()
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        fh.write(jsonl)
    print(f"wrote {GOLDEN_PATH} ({len(jsonl.splitlines())} events)")
    return GOLDEN_PATH
