"""The backend contract, pinned against every exchange implementation.

Each backend — direct COS, the cached-cos memory tier, the VM
ephemeral-store cluster — must satisfy the same observable contract
(see :mod:`repro.exchange.base`): published bytes are visible from any
site, deletion is global, capacity loss and node crashes are invisible
to readers (transparent COS fallback), and same-seed runs are
deterministic.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaos import ChaosProfile, build_plane
from repro.config import CacheConfig, ExchangeConfig
from repro.cos import CloudObjectStorage, COSClient
from repro.cos.errors import NoSuchKey
from repro.exchange import CachedCosExchange, CosExchange, VmExchange
from repro.net import LatencyModel, NetworkLink
from repro.vtime import Kernel, sleep

BACKENDS = ["cos", "cached-cos", "vm"]
BUCKET = "xchg"

#: a fast-provisioning, small-capacity VM config so contract runs stay tiny
VM_CFG = ExchangeConfig(
    backend="vm",
    vm_nodes=2,
    vm_node_memory_bytes=64 * 1024,
    vm_startup_s=0.5,
)


def make_world(seed: int = 7):
    """One kernel + COS store + an in-cloud-ish client link."""
    kernel = Kernel()
    store = CloudObjectStorage(kernel)
    store.create_bucket(BUCKET)
    link = NetworkLink(kernel, LatencyModel(rtt=0.004, jitter=0.0), seed=seed)
    return kernel, store, COSClient(store, link)


def make_backend(name: str, kernel, chaos=None, vm_cfg: ExchangeConfig = VM_CFG):
    if name == "cos":
        return CosExchange()
    if name == "cached-cos":
        return CachedCosExchange(
            CacheConfig(enabled=True, node_budget_bytes=64 * 1024),
            n_nodes=4,
            kernel=kernel,
        )
    return VmExchange(vm_cfg, kernel=kernel, chaos=chaos)


@pytest.mark.parametrize("name", BACKENDS)
class TestContract:
    def test_publish_visible_from_every_site(self, name):
        kernel, _store, cos = make_world()
        backend = make_backend(name, kernel)
        producer = backend.bound((0, "c0"))
        other = backend.bound((1, "c1"))

        def main():
            producer.put(cos, BUCKET, "k/one", b"payload-1")
            return (
                producer.get(cos, BUCKET, "k/one"),  # same site
                other.get(cos, BUCKET, "k/one"),     # remote in-cloud site
                backend.get(cos, BUCKET, "k/one"),   # client side (no site)
            )

        assert kernel.run(main) == (b"payload-1",) * 3

    def test_delete_then_get_raises_everywhere(self, name):
        kernel, _store, cos = make_world()
        backend = make_backend(name, kernel)
        producer = backend.bound((0, "c0"))

        def main():
            producer.put(cos, BUCKET, "k/gone", b"doomed")
            producer.delete(cos, BUCKET, "k/gone")
            with pytest.raises(NoSuchKey):
                producer.get(cos, BUCKET, "k/gone")
            with pytest.raises(NoSuchKey):
                backend.get(cos, BUCKET, "k/gone")
            return True

        assert kernel.run(main)

    def test_never_published_key_misses(self, name):
        kernel, _store, cos = make_world()
        backend = make_backend(name, kernel)
        reader = backend.bound((0, "c0"))

        def main():
            with pytest.raises(NoSuchKey):
                reader.get(cos, BUCKET, "k/never")
            return True

        assert kernel.run(main)

    def test_capacity_overflow_falls_back_to_cos(self, name):
        """Objects far beyond tier capacity are still served (from COS)."""
        kernel, _store, cos = make_world()
        backend = make_backend(name, kernel)
        producer = backend.bound((0, "c0"))
        blobs = {
            f"k/big/{i:02d}": bytes([i]) * (48 * 1024) for i in range(6)
        }

        def main():
            for key, blob in sorted(blobs.items()):
                producer.put(cos, BUCKET, key, blob)
            return {
                key: producer.get(cos, BUCKET, key)
                for key in sorted(blobs)
            }

        assert kernel.run(main) == blobs

    def test_chaos_node_crash_is_transparent(self, name):
        """Under the vm-node-crash profile every read still returns the
        published bytes — tier loss degrades to the charged COS GET."""
        chaos = build_plane(
            ChaosProfile("vm-node-crash", seed=11, vm_crash_window_s=2.0)
        )
        kernel, _store, cos = make_world()
        backend = make_backend(name, kernel, chaos=chaos)
        producer = backend.bound((0, "c0"))

        def main():
            producer.put(cos, BUCKET, "k/surv", b"survivor")
            sleep(5.0)  # sail past every seeded crash time
            return producer.get(cos, BUCKET, "k/surv")

        assert kernel.run(main) == b"survivor"
        if name == "vm":
            # the crashes actually fired and landed on the fault timeline
            assert chaos.fault_counts().get("vm:crash", 0) >= 1

    def test_same_seed_runs_identical(self, name):
        def one_run():
            kernel, _store, cos = make_world(seed=13)
            backend = make_backend(name, kernel)
            producer = backend.bound((0, "c0"))
            reader = backend.bound((1, "c1"))

            def main():
                for i in range(4):
                    producer.put(cos, BUCKET, f"k/d/{i}", b"x" * (100 + i))
                for i in range(4):
                    reader.get(cos, BUCKET, f"k/d/{i}")
                return kernel.now()

            horizon = kernel.run(main)
            return horizon, backend.stats()

        assert one_run() == one_run()


class TestSiteGating:
    """The tier only engages for in-cloud sites (no ambient context here)."""

    @pytest.mark.parametrize("name", ["cached-cos", "vm"])
    def test_client_side_put_leaves_tier_cold(self, name):
        kernel, _store, cos = make_world()
        backend = make_backend(name, kernel)

        def main():
            backend.put(cos, BUCKET, "k/wan", b"client-side")
            return backend.get(cos, BUCKET, "k/wan")

        assert kernel.run(main) == b"client-side"
        stats = backend.stats()
        assert stats["hits"] == 0
        if name == "vm":
            assert stats["puts"] == 0  # nothing reached the VM tier

    def test_bound_view_reports_backend_identity(self):
        kernel, _store, _cos = make_world()
        backend = make_backend("vm", kernel)
        bound = backend.bound((0, "c0"))
        assert bound.name == "vm"
        assert bound.provides_locality is False
        assert bound.describe()["backend"] == "vm"


class TestVmExchange:
    """VM-plane specifics: provisioning, ring, eviction, crash, billing."""

    def test_first_op_waits_for_provisioning(self):
        kernel, _store, cos = make_world()
        cfg = dataclasses.replace(VM_CFG, vm_startup_s=3.0)
        backend = make_backend("vm", kernel, vm_cfg=cfg)
        producer = backend.bound((0, "c0"))

        def main():
            producer.put(cos, BUCKET, "k/p", b"payload")
            return kernel.now()

        assert kernel.run(main) >= 3.0
        assert backend.stats()["startup_waits"] >= 1

    def test_ring_ownership_is_stable(self):
        kernel, _store, _cos = make_world()
        backend = make_backend("vm", kernel)
        owners = [backend.ring.owner(f"k/{i}") for i in range(32)]
        assert owners == [backend.ring.owner(f"k/{i}") for i in range(32)]
        assert set(owners) <= set(range(VM_CFG.vm_nodes))
        assert len(set(owners)) > 1  # keys actually spread across nodes

    def test_lru_eviction_on_full_node(self):
        kernel, _store, cos = make_world()
        backend = make_backend("vm", kernel)
        producer = backend.bound((0, "c0"))

        def main():
            for i in range(8):
                producer.put(cos, BUCKET, f"k/e/{i}", bytes([i]) * (40 * 1024))
            return [producer.get(cos, BUCKET, f"k/e/{i}") for i in range(8)]

        blobs = kernel.run(main)
        assert blobs == [bytes([i]) * (40 * 1024) for i in range(8)]
        stats = backend.stats()
        assert stats["evictions"] >= 1
        assert stats["misses"] >= 1  # evicted entries re-read from COS
        per_node = backend.describe()["nodes"]
        assert all(
            node["used_bytes"] <= node["capacity_bytes"] for node in per_node
        )

    def test_oversize_object_never_cached(self):
        kernel, _store, cos = make_world()
        backend = make_backend("vm", kernel)
        producer = backend.bound((0, "c0"))
        big = b"z" * (VM_CFG.vm_node_memory_bytes + 1)

        def main():
            producer.put(cos, BUCKET, "k/huge", big)
            return producer.get(cos, BUCKET, "k/huge")

        assert kernel.run(main) == big
        assert backend.stats()["resident_bytes"] == 0

    def test_seeded_crash_drops_node_state(self):
        chaos = build_plane(
            ChaosProfile("vm-node-crash", seed=5, vm_crash_window_s=1.0)
        )
        kernel, _store, cos = make_world()
        cfg = dataclasses.replace(VM_CFG, vm_startup_s=0.0)
        backend = make_backend("vm", kernel, chaos=chaos, vm_cfg=cfg)
        producer = backend.bound((0, "c0"))
        crash_times = [n.crash_at for n in backend.nodes]
        assert all(t is not None and 0 < t <= 1.0 for t in crash_times)

        def main():
            for i in range(4):
                producer.put(cos, BUCKET, f"k/c/{i}", bytes([i]) * 512)
            sleep(2.0)  # past every seeded crash
            return [producer.get(cos, BUCKET, f"k/c/{i}") for i in range(4)]

        assert kernel.run(main) == [bytes([i]) * 512 for i in range(4)]
        assert chaos.fault_counts().get("vm:crash", 0) >= 1
        assert backend.stats()["misses"] >= 1

    def test_vm_seconds_and_billing(self):
        kernel, _store, _cos = make_world()
        backend = make_backend("vm", kernel)
        assert backend.vm_seconds(10.0) == VM_CFG.vm_nodes * 10.0
        bill = backend.billing(3600.0)
        assert bill["vm_nodes"] == VM_CFG.vm_nodes
        assert bill["vm_seconds"] == VM_CFG.vm_nodes * 3600.0
        from repro.core.cost import VM_NODE_PRICE_PER_HOUR

        assert bill["vm_cost_usd"] == pytest.approx(
            VM_CFG.vm_nodes * VM_NODE_PRICE_PER_HOUR, rel=1e-6
        )
