"""The tentpole regression gate: the default exchange is byte-identical.

``golden_trace_default_exchange.jsonl`` was exported by the pre-refactor
code (COS-only intermediates, no backend seam) from the frozen workload
in :mod:`tests.exchange.golden_workload`.  With ``ExchangeConfig`` unset
the refactored stack must reproduce it byte for byte — same events, same
timestamps, same ordering, same JSON serialization.
"""

from __future__ import annotations

import pathlib

from tests.exchange.golden_workload import GOLDEN_PATH, run_traced

GOLDEN = pathlib.Path(__file__).parent / GOLDEN_PATH


class TestGoldenDefaultExchange:
    def test_default_exchange_trace_matches_pre_refactor_golden(self):
        got = run_traced()
        want = GOLDEN.read_text(encoding="utf-8")
        assert want, "golden fixture missing or empty"
        # compare prefixes first for a readable diff on regression
        if got != want:
            for i, (a, b) in enumerate(zip(got.splitlines(), want.splitlines())):
                assert a == b, f"first divergence at trace line {i + 1}"
        assert got == want

    def test_golden_run_is_self_deterministic(self):
        assert run_traced() == run_traced()
