"""EventRecord: canonical JSON form, round-trips, JSONL helpers."""

from __future__ import annotations

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.events import EventRecord, from_jsonl, to_jsonl
from repro.events import records as ev


class TestCanonicalForm:
    def test_round_trip(self):
        record = EventRecord(
            seq=3,
            t=1.25,
            kind=ev.CALLS_INVOKED,
            data={"calls": [["M000", "00001", "act-1", 1]], "recovered": False},
        )
        assert EventRecord.from_json(record.to_json()) == record

    def test_byte_stable_key_order(self):
        a = EventRecord(seq=0, t=0.0, kind="k", data={"b": 1, "a": 2})
        b = EventRecord(seq=0, t=0.0, kind="k", data={"a": 2, "b": 1})
        assert a.to_json() == b.to_json()

    def test_no_whitespace(self):
        record = EventRecord(seq=0, t=0.5, kind="k", data={"x": [1, 2]})
        assert " " not in record.to_json()

    def test_single_line(self):
        record = EventRecord(seq=0, t=0.0, kind="k", data={"s": "a\nb"})
        assert "\n" not in record.to_json()
        assert EventRecord.from_json(record.to_json()).data["s"] == "a\nb"

    def test_float_time_survives(self):
        record = EventRecord(seq=1, t=0.6635328977255031, kind="k")
        assert EventRecord.from_json(record.to_json()).t == record.t


class TestJsonl:
    def test_round_trip(self):
        records = [
            EventRecord(seq=i, t=float(i), kind=ev.STATUS_OBSERVED, data={"i": i})
            for i in range(5)
        ]
        assert from_jsonl(to_jsonl(records)) == records

    def test_blank_lines_skipped(self):
        text = to_jsonl([EventRecord(seq=0, t=0.0, kind="k")]) + "\n\n"
        assert len(from_jsonl(text)) == 1

    def test_empty(self):
        assert to_jsonl([]) == ""
        assert from_jsonl("") == []


@given(
    seq=st.integers(min_value=0, max_value=10**9),
    t=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    kind=st.sampled_from([ev.JOB_SUBMITTED, ev.NODE_FIRED, ev.RESUME_STARTED]),
    data=st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(
            st.integers(),
            st.text(max_size=16),
            st.booleans(),
            st.none(),
            st.lists(st.integers(), max_size=4),
        ),
        max_size=5,
    ),
)
def test_any_json_payload_round_trips(seq, t, kind, data):
    record = EventRecord(seq=seq, t=t, kind=kind, data=data)
    text = record.to_json()
    assert EventRecord.from_json(text) == record
    # canonical: re-serializing the parsed form is byte-identical
    assert EventRecord.from_json(text).to_json() == text
    # and it is plain JSON any consumer can parse
    assert json.loads(text)["kind"] == kind
