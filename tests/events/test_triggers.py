"""TriggerEngine: the materialized view a journal folds into."""

from __future__ import annotations

import pytest

from repro.events import TriggerEngine, TriggerRule


MAPS = [("M000", f"{i:05d}") for i in range(3)]
REDUCER = ("R000", "00000")


@pytest.fixture()
def engine() -> TriggerEngine:
    e = TriggerEngine()
    e.add_rule(REDUCER, MAPS)
    return e


class TestRules:
    def test_rule_for(self, engine):
        rule = engine.rule_for(REDUCER)
        assert isinstance(rule, TriggerRule)
        assert rule.deps == tuple(MAPS)
        assert engine.rule_for(MAPS[0]) is None

    def test_not_satisfied_until_all_deps_commit(self, engine):
        assert not engine.satisfied(REDUCER)
        for key in MAPS[:-1]:
            engine.note_commit(key, True)
            assert not engine.satisfied(REDUCER)
        engine.note_commit(MAPS[-1], True)
        assert engine.satisfied(REDUCER)

    def test_failed_dep_blocks_instead_of_satisfying(self, engine):
        engine.note_commit(MAPS[0], True)
        engine.note_commit(MAPS[1], False)
        engine.note_commit(MAPS[2], True)
        assert not engine.satisfied(REDUCER)
        assert engine.blocked_by(REDUCER) == MAPS[1]

    def test_recommit_overwrites(self, engine):
        # a retry can turn a failure into a success; the view follows
        engine.note_commit(MAPS[0], False)
        assert engine.blocked_by(REDUCER) == MAPS[0]
        engine.note_commit(MAPS[0], True)
        assert engine.blocked_by(REDUCER) is None
        assert engine.committed(MAPS[0]) is True

    def test_committed_tristate(self, engine):
        assert engine.committed(MAPS[0]) is None
        engine.note_commit(MAPS[0], True)
        assert engine.committed(MAPS[0]) is True


class TestReadiness:
    def test_ready_and_fired(self, engine):
        for key in MAPS:
            engine.note_commit(key, True)
        assert [r.target for r in engine.ready()] == [REDUCER]
        engine.mark_fired(REDUCER)
        assert engine.fired(REDUCER)
        assert engine.ready() == []

    def test_pending_lists_unfired_rules(self, engine):
        assert [r.target for r in engine.pending()] == [REDUCER]
        engine.mark_fired(REDUCER)
        assert engine.pending() == []

    def test_committed_target_is_not_ready(self, engine):
        # replay can see the target's own commit before its fired record
        for key in MAPS:
            engine.note_commit(key, True)
        engine.note_commit(REDUCER, True)
        assert engine.ready() == []
        assert engine.pending() == []

    def test_diamond(self):
        # a -> (b, c) -> d: d fires only after both mid nodes commit
        engine = TriggerEngine()
        a, b, c, d = ("S", "a"), ("S", "b"), ("S", "c"), ("S", "d")
        engine.add_rule(b, [a])
        engine.add_rule(c, [a])
        engine.add_rule(d, [b, c])
        engine.note_commit(a, True)
        assert {r.target for r in engine.ready()} == {b, c}
        engine.mark_fired(b)
        engine.mark_fired(c)
        engine.note_commit(b, True)
        assert not engine.satisfied(d)
        engine.note_commit(c, True)
        assert engine.satisfied(d)


class TestReplayEquivalence:
    def test_fold_order_does_not_matter(self):
        """Commits folded in any order produce the same view (the property
        replay relies on: the journal's order is one valid order)."""
        import itertools

        for perm in itertools.permutations(MAPS):
            engine = TriggerEngine()
            engine.add_rule(REDUCER, MAPS)
            for key in perm:
                engine.note_commit(key, True)
            assert engine.satisfied(REDUCER)
