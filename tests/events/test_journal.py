"""Journal backends: append-once COS log, MQ stream, mirroring, liveness."""

from __future__ import annotations

import pytest

import repro as pw
from repro.config import EventsConfig
from repro.events import (
    COSJournalBackend,
    EventJournal,
    JournalConflictError,
    MQJournalBackend,
)
from repro.events import records as ev


def _square(x):
    return x * x


class TestEventsConfig:
    def test_disabled_by_default(self):
        config = pw.PyWrenConfig()
        assert config.events.enabled is False

    def test_backend_validated(self):
        with pytest.raises(ValueError, match="events backend"):
            EventsConfig(backend="postgres").validate()

    def test_from_dict(self):
        config = pw.PyWrenConfig.from_dict(
            {"events": {"enabled": True, "backend": "mq"}}
        )
        assert config.events.enabled
        assert config.events.backend == "mq"


class TestCOSBackend:
    def test_append_once_and_replay(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            backend = COSJournalBackend(executor._storage, "job-x")
            backend.append(0, '{"data":{},"kind":"a","seq":0,"t":0.0}')
            backend.append(1, '{"data":{},"kind":"b","seq":1,"t":1.0}')
            with pytest.raises(JournalConflictError, match="slot 1"):
                backend.append(1, '{"data":{},"kind":"c","seq":1,"t":2.0}')
            return [r.kind for r in backend.replay()]

        assert env.run(main) == ["a", "b"]

    def test_replay_is_per_executor(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            a = COSJournalBackend(executor._storage, "job-a")
            b = COSJournalBackend(executor._storage, "job-b")
            a.append(0, '{"data":{},"kind":"a","seq":0,"t":0.0}')
            return b.replay()

        assert env.run(main) == []


class TestMQBackend:
    def test_append_and_browse_replay(self, env):
        def main():
            mq = env.mq_client()
            backend = MQJournalBackend(mq, "job-q")
            backend.append(1, '{"data":{},"kind":"b","seq":1,"t":1.0}')
            backend.append(0, '{"data":{},"kind":"a","seq":0,"t":0.0}')
            # browse is non-destructive and replay sorts by seq
            first = [r.seq for r in backend.replay()]
            second = [r.seq for r in backend.replay()]
            return first, second

        first, second = env.run(main)
        assert first == [0, 1]
        assert second == [0, 1]


class TestEventJournal:
    def test_executor_journals_a_map(self, cloud):
        env = cloud()
        env.config = env.config.with_overrides(
            events=EventsConfig(enabled=True)
        )

        def main():
            executor = pw.ibm_cf_executor()
            executor.map(_square, [1, 2, 3])
            result = executor.get_result()
            return result, [r.kind for r in executor.journal.replay()]

        result, kinds = env.run(main)
        assert result == [1, 4, 9]
        assert kinds[0] == ev.EXECUTOR_CREATED
        assert ev.JOB_SUBMITTED in kinds
        assert ev.CALLS_INVOKED in kinds
        assert ev.FUTURES_EXPOSED in kinds
        assert ev.STATUS_OBSERVED in kinds
        assert kinds[-1] == ev.RESULTS_COLLECTED

    def test_seqs_contiguous_from_zero(self, cloud):
        env = cloud()
        env.config = env.config.with_overrides(
            events=EventsConfig(enabled=True)
        )

        def main():
            executor = pw.ibm_cf_executor()
            executor.map(_square, [1, 2])
            executor.get_result()
            return [r.seq for r in executor.journal.replay()]

        seqs = env.run(main)
        assert seqs == list(range(len(seqs)))

    def test_mirror_to_mq_tails_the_cos_log(self, cloud):
        env = cloud()
        env.config = env.config.with_overrides(
            events=EventsConfig(enabled=True, mirror_to_mq=True)
        )

        def main():
            executor = pw.ibm_cf_executor()
            executor.map(_square, [5])
            executor.get_result()
            cos_log = executor.journal.replay()
            mq_log = MQJournalBackend(
                env.mq_client(), executor.executor_id
            ).replay()
            return cos_log, mq_log

        cos_log, mq_log = env.run(main)
        assert cos_log == mq_log  # byte-identical records, both orders

    def test_mq_backend_alone(self, cloud):
        env = cloud()
        env.config = env.config.with_overrides(
            events=EventsConfig(enabled=True, backend="mq")
        )

        def main():
            executor = pw.ibm_cf_executor()
            executor.map(_square, [2, 3])
            result = executor.get_result()
            return result, [r.kind for r in executor.journal.replay()]

        result, kinds = env.run(main)
        assert result == [4, 9]
        assert kinds[0] == ev.EXECUTOR_CREATED

    def test_disabled_means_no_journal_no_objects(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            executor.map(_square, [1])
            executor.get_result()
            prefix = executor._storage.journal_prefix(executor.executor_id)
            keys = executor._cos.list_objects(
                executor.config.storage_bucket, prefix
            )
            return executor.journal, list(keys)

        journal, keys = env.run(main)
        assert journal is None
        assert keys == []

    def test_dead_driver_appends_are_dropped(self, cloud):
        """A driver killed by client-crash chaos stops writing: its
        in-flight watcher threads must not race the adopter for slots."""
        from repro.chaos import ChaosProfile

        env = cloud(
            chaos=ChaosProfile("client-crash", seed=1, client_crash_at_s=2.0)
        )
        env.config = env.config.with_overrides(
            events=EventsConfig(enabled=True)
        )

        def main():
            executor = pw.ibm_cf_executor()
            journal = executor.journal
            before = journal.next_seq
            pw.sleep(3.0)  # past the crash instant
            assert journal.append(ev.STATUS_OBSERVED, calls=[]) is None
            return before, journal.next_seq, len(journal.replay())

        before, after, stored = env.run(main)
        assert after == before  # no slot consumed
        assert stored == before

    def test_in_cloud_executor_never_journals(self, cloud):
        env = cloud()
        env.config = env.config.with_overrides(
            events=EventsConfig(enabled=True)
        )

        def _nested(x):
            executor = pw.ibm_cf_executor()
            executor.map(_square, [x, x + 1])
            return executor.journal is None, executor.get_result()

        def main():
            executor = pw.ibm_cf_executor()
            executor.map(_nested, [3])
            return executor.get_result()

        no_journal, inner = env.run(main)
        assert no_journal
        assert inner == [9, 16]
