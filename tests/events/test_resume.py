"""Kill the client, replay the journal, finish the job.

The crash instants are *derived from the baseline run's own journal*
(same seed => same timeline): "mid-flight" means after the last
``futures.exposed`` record (the submission is fully durable) and before
the final ``results.collected`` — the window where the driver is just
waiting.  A crash inside that window must resume to results
byte-identical to the uninterrupted run; a crash *during* submission
resumes the durable prefix (whatever was journaled before the instant
of death) — and in both cases committed calls are never re-executed.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro as pw
from repro.chaos import ChaosProfile
from repro.config import EventsConfig
from repro.core.environment import CloudEnvironment
from repro.core.errors import PyWrenError
from repro.events import records as ev
from repro.events import to_jsonl

NEVER = 1.0e9  # a crash time the run always finishes before


def _square(x):
    return x * x


def _total(values):
    return sum(values)


def _make_env(crash_at: float, seed: int = 123) -> CloudEnvironment:
    """Identical environments except for the crash instant (same chaos
    profile in both, so every latency draw lines up)."""
    return CloudEnvironment.create(
        seed=seed,
        events=True,
        chaos=ChaosProfile("client-crash", seed=7, client_crash_at_s=crash_at),
    )


def _run_map_reduce(env: CloudEnvironment, items: list[int]):
    """Returns (outcome, result, records, stats) for one driver's life."""

    def main():
        executor = pw.ibm_cf_executor()
        job_id = executor.executor_id
        try:
            executor.map_reduce(_square, items, _total)
            result = executor.get_result()
            return "done", result, executor.journal.replay(), None
        except pw.ClientCrashError:
            adopter = env.executor()
            job = adopter.reattach(job_id)
            result = job.get_result()
            return "resumed", result, adopter.journal.replay(), job.stats

    return env.run(main)


def _submission_window(records) -> tuple[float, float]:
    """(after submission fully durable, before the last crash checkpoint).

    The driver only *observes* its own death at a checkpoint (a poll
    round / push iteration), and the last checkpoint of a run is the
    round that journals the final ``status.observed``.  A crash instant
    inside this window is therefore guaranteed to be seen mid-wait.
    """
    exposed = max(r.t for r in records if r.kind == ev.FUTURES_EXPOSED)
    observed = [
        r.t for r in records if r.kind == ev.STATUS_OBSERVED and r.t > exposed
    ]
    assert observed, "no status checkpoint after the last exposure"
    return exposed, min(observed)


def _assert_no_reexecution(records) -> None:
    """Nothing committed at reconcile time is ever invoked again."""
    started = [r for r in records if r.kind == ev.RESUME_STARTED]
    assert started, "resumed run must journal resume.started"
    resume_seq = started[-1].seq
    committed = set()
    for record in records:
        if record.kind == ev.RESUME_RECONCILED and record.seq > resume_seq:
            committed |= {
                (cs, call_id) for cs, call_id, _success in record.data["committed"]
            }
    for record in records:
        if record.seq > resume_seq and record.kind in (
            ev.CALLS_INVOKED,
            ev.NODE_FIRED,
        ):
            for row in record.data.get("calls", []):
                assert (row[0], row[1]) not in committed, (
                    f"committed call {row[0]}/{row[1]} was re-invoked "
                    "after reattach"
                )


class TestKillMidMapReduce:
    ITEMS = [1, 2, 3, 4]

    def _baseline(self):
        outcome, result, records, _ = _run_map_reduce(
            _make_env(NEVER), self.ITEMS
        )
        assert outcome == "done"
        return result, records

    def test_resume_matches_uninterrupted(self):
        baseline, records = self._baseline()
        exposed, end = _submission_window(records)
        crash_at = (exposed + end) / 2.0

        outcome, resumed, crash_records, stats = _run_map_reduce(
            _make_env(crash_at), self.ITEMS
        )
        assert outcome == "resumed"
        # byte-identical to the run nobody interrupted
        assert pickle.dumps(resumed) == pickle.dumps(baseline)
        # everything was already invoked before the crash: the adopter
        # only watched, it never issued an activation
        assert stats["reinvoked"] == 0
        assert stats["buried"] == 0
        _assert_no_reexecution(crash_records)

    def test_crash_during_submission_resumes_durable_prefix(self):
        baseline, records = self._baseline()
        # die between the maps' exposure and the reducer DAG's journal
        # append: the reducer was never durably promised, so the adopter
        # owes exactly the durable prefix — the map results
        maps_exposed = min(r.t for r in records if r.kind == ev.FUTURES_EXPOSED)
        dag_submitted = min(r.t for r in records if r.kind == ev.DAG_SUBMITTED)
        assert dag_submitted > maps_exposed
        outcome, resumed, crash_records, stats = _run_map_reduce(
            _make_env((maps_exposed + dag_submitted) / 2.0), self.ITEMS
        )
        assert outcome == "resumed"
        # the maps (and only the maps) were promised before the crash
        assert resumed == baseline[: len(self.ITEMS)]
        assert all(value is not None for value in resumed)
        _assert_no_reexecution(crash_records)

    def test_resumes_counter_survives_in_journal(self):
        _, records = self._baseline()
        exposed, end = _submission_window(records)
        outcome, _, crash_records, _ = _run_map_reduce(
            _make_env((exposed + end) / 2.0), self.ITEMS
        )
        assert outcome == "resumed"
        kinds = [r.kind for r in crash_records]
        assert kinds.count(ev.RESUME_STARTED) == 1
        assert kinds.count(ev.RESUME_RECONCILED) == 1
        # the log is still contiguous after adoption
        seqs = [r.seq for r in crash_records]
        assert seqs == list(range(len(seqs)))


class TestKillMidDag:
    """Crash a mergesort DAG between stage commits; merges fire from
    replayed trigger rules, not from any surviving watcher state."""

    N_LEAVES = 4

    def _run(self, env: CloudEnvironment):
        from repro.dag import DagBuilder, DagScheduler

        def chunk_sort(spec):
            pw.sleep(5 + spec["skew"] * 10)
            return sorted(spec["chunk"])

        def merge_pair(parts):
            left, right = parts
            out, i, j = [], 0, 0
            while i < len(left) and j < len(right):
                if left[i] <= right[j]:
                    out.append(left[i])
                    i += 1
                else:
                    out.append(right[j])
                    j += 1
            return out + left[i:] + right[j:]

        rng = random.Random(11)
        array = [rng.randrange(1_000_000) for _ in range(64)]
        size = len(array) // self.N_LEAVES

        def main():
            builder = DagBuilder()
            level = [
                builder.call(
                    chunk_sort,
                    {"chunk": array[i * size:(i + 1) * size], "skew": i % 3},
                    name=f"sort[{i}]",
                    stage="sort",
                )
                for i in range(self.N_LEAVES)
            ]
            height = 1
            while len(level) > 1:
                level = [
                    builder.reduce(
                        merge_pair,
                        [level[i], level[i + 1]],
                        name=f"merge{height}[{i // 2}]",
                        stage=f"merge{height}",
                    )
                    for i in range(0, len(level), 2)
                ]
                height += 1
            (root,) = level

            executor = pw.ibm_cf_executor()
            job_id = executor.executor_id
            try:
                run = DagScheduler(executor).submit(builder.build())
                run.expose(root)
                result = executor.get_result()
                return "done", result, executor.journal.replay(), None
            except pw.ClientCrashError:
                adopter = env.executor()
                job = adopter.reattach(job_id)
                result = job.get_result()
                return "resumed", result, adopter.journal.replay(), job.stats

        return env.run(main), sorted(array)

    def test_resume_fires_pending_merges(self):
        (outcome, baseline, records, _), expected = self._run(_make_env(NEVER))
        assert outcome == "done"
        assert baseline == expected

        exposed = max(r.t for r in records if r.kind == ev.FUTURES_EXPOSED)
        last_obs = max(r.t for r in records if r.kind == ev.STATUS_OBSERVED)
        # one third into the wait: some sorts committed, merges pending
        crash_at = exposed + (last_obs - exposed) / 3.0
        (outcome, resumed, crash_records, stats), _ = self._run(
            _make_env(crash_at)
        )
        assert outcome == "resumed"
        assert pickle.dumps(resumed) == pickle.dumps(baseline)
        # the merges were fired by the adopter, from log-derived rules
        assert stats["refired"] >= 1
        assert stats["reinvoked"] == 0
        _assert_no_reexecution(crash_records)


class TestReattachApi:
    def test_requires_events_enabled(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            with pytest.raises(PyWrenError, match="events.enabled"):
                executor.reattach("exec-deadbeef")

        env.run(main)

    def test_unknown_job_raises(self, cloud):
        env = cloud()
        env.config = env.config.with_overrides(
            events=EventsConfig(enabled=True)
        )

        def main():
            executor = pw.ibm_cf_executor()
            own_id = executor.executor_id
            with pytest.raises(PyWrenError, match="no event journal"):
                executor.reattach("exec-no-such-job")
            # a failed reattach must not hijack the executor's identity
            assert executor.executor_id == own_id

        env.run(main)


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=1, max_value=10_000),
)
def test_same_seed_produces_byte_identical_journal(n, seed):
    """The journal is deterministic: same seed, same workload => the
    exported JSONL is byte-for-byte identical across two fresh clouds."""
    items = list(range(1, n + 1))

    def one_run() -> tuple[bytes, list]:
        env = CloudEnvironment.create(seed=seed, events=True)

        def main():
            executor = pw.ibm_cf_executor()
            executor.map_reduce(_square, items, _total)
            result = executor.get_result()
            return to_jsonl(executor.journal.replay()).encode(), result

        return env.run(main)

    log_a, result_a = one_run()
    log_b, result_b = one_run()
    assert log_a == log_b
    assert result_a == result_b


@pytest.mark.slow
class TestKillAtRandomVtimeSweep:
    """Nightly: crash the driver at random virtual times across a job's
    whole life.  Whatever the instant, the adopter must finish with the
    durable prefix of the baseline's results and never double-execute a
    committed call."""

    ITEMS = [1, 2, 3, 4, 5, 6]

    def test_sweep(self):
        outcome, baseline, records, _ = _run_map_reduce(
            _make_env(NEVER), self.ITEMS
        )
        assert outcome == "done"
        horizon = max(r.t for r in records)
        exposed = max(r.t for r in records if r.kind == ev.FUTURES_EXPOSED)

        rng = random.Random(0xC0FFEE)
        crash_times = sorted(rng.uniform(0.5, horizon) for _ in range(8))
        for crash_at in crash_times:
            outcome, resumed, crash_records, stats = _run_map_reduce(
                _make_env(crash_at), self.ITEMS
            )
            if outcome == "done":
                # the crash window landed after the final checkpoint
                assert resumed == baseline
                continue
            if resumed is None:
                resumed = []  # nothing exposed before the crash instant
            # resumed results are the durable prefix of the baseline —
            # and the whole baseline when the submission was durable
            assert resumed == baseline[: len(resumed)], f"crash@{crash_at}"
            if crash_at > exposed:
                assert pickle.dumps(resumed) == pickle.dumps(baseline)
            _assert_no_reexecution(crash_records)
            # zero lost work: every exposed call produced a real value
            assert all(value is not None for value in resumed)
