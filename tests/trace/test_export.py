"""Exporter tests: JSONL round trip and Chrome trace_event shape."""

from __future__ import annotations

import json

from repro.trace import export
from repro.trace.events import point, span

SAMPLE = [
    span("worker.run", "worker", 1.0, 3.0, {"call_id": "00000"}, {"success": True}),
    point("client.invoke", "client", 0.25, {"call_id": "00000", "attempt": 1}, None),
    span("cos.put", "cos", 0.5, 0.9, {"call_id": "00000"}, {"bytes": 4096}),
    point("gateway.throttle", "gateway", 0.1, None, {"attempt": 1}),
]


class TestJsonl:
    def test_round_trip_is_exact(self):
        text = export.to_jsonl(SAMPLE)
        assert export.from_jsonl(text) == sorted(SAMPLE, key=lambda e: e.sort_key())

    def test_output_is_input_order_independent(self):
        assert export.to_jsonl(SAMPLE) == export.to_jsonl(list(reversed(SAMPLE)))

    def test_one_compact_object_per_line(self):
        lines = export.to_jsonl(SAMPLE).splitlines()
        assert len(lines) == len(SAMPLE)
        for line in lines:
            parsed = json.loads(line)
            assert ": " not in line  # compact separators
            assert list(parsed) == sorted(parsed)  # key-sorted

    def test_empty_stream(self):
        assert export.to_jsonl([]) == ""
        assert export.from_jsonl("") == []

    def test_blank_lines_ignored(self):
        text = export.to_jsonl(SAMPLE)
        assert export.from_jsonl("\n" + text + "\n\n") == export.from_jsonl(text)

    def test_point_omits_dur(self):
        (line,) = export.to_jsonl([SAMPLE[1]]).splitlines()
        assert "dur" not in json.loads(line)

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export.write_jsonl(SAMPLE, str(path))
        assert path.read_text() == export.to_jsonl(SAMPLE)


class TestChromeTrace:
    def test_spans_become_complete_events(self):
        document = export.to_chrome_trace(SAMPLE)
        complete = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        assert len(complete) == 2
        run = next(e for e in complete if e["name"] == "worker.run")
        assert run["ts"] == 1.0 * 1e6
        assert run["dur"] == 2.0 * 1e6
        assert run["args"]["call_id"] == "00000"
        assert run["args"]["success"] is True

    def test_points_become_instants(self):
        document = export.to_chrome_trace(SAMPLE)
        instants = [e for e in document["traceEvents"] if e.get("ph") == "i"]
        assert len(instants) == 2
        assert all(e["s"] == "t" for e in instants)

    def test_one_named_track_per_seen_layer(self):
        document = export.to_chrome_trace(SAMPLE)
        names = {
            e["args"]["name"]: e["tid"]
            for e in document["traceEvents"]
            if e.get("ph") == "M"
        }
        assert set(names) == {"worker", "client", "cos", "gateway"}
        assert len(set(names.values())) == 4  # distinct tids

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        export.write_chrome_trace(SAMPLE, str(path))
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == len(SAMPLE) + 4
