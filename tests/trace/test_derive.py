"""Derivation tests: call records, stats, billing from synthetic streams."""

from __future__ import annotations

import pytest

from repro.faas.billing import billed_duration
from repro.trace import derive
from repro.trace.events import point, span


def _commit(call_id, start, end, success=True, committed=True, cs="M000", ex="exec-1"):
    return span(
        "worker.commit",
        "worker",
        end,
        end + 0.1,
        {"executor_id": ex, "callset_id": cs, "call_id": call_id},
        {"committed": committed, "success": success, "run_start": start, "run_end": end},
    )


def _invoke(call_id, attempt=1, cs="M000", ex="exec-1"):
    return point(
        "client.invoke",
        "client",
        0.0,
        {"executor_id": ex, "callset_id": cs, "call_id": call_id, "attempt": attempt},
        None,
    )


def _bury(call_id, cs="M000", ex="exec-1"):
    return point(
        "client.bury",
        "client",
        50.0,
        {"executor_id": ex, "callset_id": cs, "call_id": call_id},
        {"success": False, "lost": True, "run_start": None, "run_end": None},
    )


class TestCallRecords:
    def test_committed_outcome_wins(self):
        events = [_invoke("00000"), _commit("00000", 1.0, 4.0)]
        (record,) = derive.call_records_from_events(events)
        assert (record.start, record.end) == (1.0, 4.0)
        assert record.success is True
        assert record.attempts == 1

    def test_uncommitted_status_is_ignored(self):
        events = [
            _invoke("00000", attempt=1),
            _invoke("00000", attempt=2),
            _commit("00000", 1.0, 4.0, committed=False),  # lost the PUT race
            _commit("00000", 2.0, 5.0, committed=True),
        ]
        (record,) = derive.call_records_from_events(events)
        assert (record.start, record.end) == (2.0, 5.0)
        assert record.attempts == 2

    def test_commit_beats_bury(self):
        events = [_invoke("00000"), _bury("00000"), _commit("00000", 1.0, 4.0)]
        (record,) = derive.call_records_from_events(events)
        assert record.success is True

    def test_buried_call_has_no_timestamps(self):
        events = [_invoke("00000", attempt=3), _bury("00000")]
        (record,) = derive.call_records_from_events(events)
        assert record.success is False
        assert record.start is None and record.end is None
        assert record.attempts == 3

    def test_filters_by_executor_and_callset(self):
        events = [
            _commit("00000", 1.0, 4.0),
            _commit("00000", 1.0, 4.0, cs="R001"),
            _commit("00000", 1.0, 4.0, ex="exec-2"),
        ]
        assert len(derive.call_records_from_events(events)) == 3
        assert len(derive.call_records_from_events(events, executor_id="exec-1")) == 2
        assert (
            len(
                derive.call_records_from_events(
                    events, executor_id="exec-1", callset_id="M000"
                )
            )
            == 1
        )


class TestStatsAndIntervals:
    def test_stats_match_hand_computation(self):
        events = [
            _invoke("00000"),
            _invoke("00001", attempt=2),
            _commit("00000", 0.0, 10.0),
            _commit("00001", 2.0, 6.0),
        ]
        stats = derive.job_stats_from_events(events)
        assert stats.n_calls == 2
        assert stats.makespan == 10.0
        assert stats.spawn_spread == 2.0
        assert stats.mean_duration == 7.0
        assert stats.retries_total == 1

    def test_intervals_skip_buried(self):
        events = [_commit("00000", 1.0, 4.0), _bury("00001")]
        assert derive.execution_intervals(events) == [(1.0, 4.0)]


class TestBilling:
    def _execute(self, activation_id, start, end, action="pywren_runner", mem=256):
        return span(
            "container.execute",
            "container",
            start,
            end,
            {"activation_id": activation_id},
            {"action": action, "memory_mb": mem, "cold": False, "status": "success"},
        )

    def test_entries_and_totals(self):
        events = [self._execute("a1", 0.0, 1.0), self._execute("a2", 0.0, 2.5, mem=512)]
        entries = derive.billing_entries_from_events(events)
        assert [e.activation_id for e in entries] == ["a1", "a2"]
        totals = derive.billing_totals_from_events(events)
        assert totals["activations"] == 2
        expected = billed_duration(1.0) * 256 / 1024 + billed_duration(2.5) * 512 / 1024
        assert totals["gb_seconds"] == pytest.approx(expected, rel=1e-12)
        assert totals["by_action"]["pywren_runner"] == pytest.approx(
            expected, rel=1e-12
        )

    def test_cos_byte_totals(self):
        events = [
            span("cos.put", "cos", 0.0, 0.2, None, {"bytes": 100}),
            span("cos.put", "cos", 0.3, 0.4, None, {"bytes": 50}),
            span("cos.get", "cos", 0.5, 0.6, None, {"bytes": 7}),
        ]
        totals = derive.cos_byte_totals(events)
        assert totals["put"] == {"requests": 2, "bytes": 150}
        assert totals["get"] == {"requests": 1, "bytes": 7}
