"""Unit tests for the Tracer: disabled guards, binding, ordering, listeners."""

from __future__ import annotations

from repro.trace import Tracer
from repro.trace.events import KIND_POINT, KIND_SPAN, TraceEvent, point, span


class TestDisabled:
    def test_emission_is_a_no_op(self, kernel):
        tracer = Tracer(kernel, enabled=False)
        tracer.point("client.invoke", "client", t=1.0)
        tracer.span_at("worker.run", "worker", 0.0, 2.0)
        with tracer.span("cos.get", "cos"):
            pass
        assert len(tracer) == 0
        assert tracer.events() == []

    def test_bind_is_a_no_op(self, kernel):
        tracer = Tracer(kernel, enabled=False)
        with tracer.bind(executor_id="exec-1"):
            enabled = Tracer(kernel, enabled=True)
            enabled.point("client.invoke", "client", t=0.0)
        assert enabled.events()[0].ids == ()

    def test_default_is_disabled(self, kernel):
        assert Tracer(kernel).enabled is False


class TestEmission:
    def test_point_records_time_and_payload(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        tracer.point("gateway.throttle", "gateway", t=3.5, attempt=2)
        (event,) = tracer.events()
        assert event.kind == KIND_POINT
        assert (event.t, event.name, event.layer) == (3.5, "gateway.throttle", "gateway")
        assert event.get_attr("attempt") == 2
        assert event.end == 3.5  # points have zero extent

    def test_span_at_records_duration(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        tracer.span_at("worker.run", "worker", 2.0, 5.5, success=True)
        (event,) = tracer.events()
        assert event.kind == KIND_SPAN
        assert event.t == 2.0
        assert event.dur == 3.5
        assert event.end == 5.5

    def test_span_context_measures_kernel_clock(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        with tracer.span("net.request", "net", bytes=128):
            pass  # bare kernel: clock stays at 0.0 outside run()
        (event,) = tracer.events()
        assert event.kind == KIND_SPAN
        assert event.t == kernel.now()
        assert event.dur == 0.0
        assert event.get_attr("bytes") == 128

    def test_point_defaults_to_kernel_now(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        tracer.point("chaos.cos", "chaos")
        assert tracer.events()[0].t == kernel.now()


class TestBinding:
    def test_bound_ids_stamp_events(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        with tracer.bind(executor_id="exec-1", callset_id="M000"):
            tracer.point("cos.put", "cos", t=0.0)
        tracer.point("cos.put", "cos", t=0.0)  # outside: no ambient ids
        stamped, bare = tracer.raw_events()
        assert stamped.id_dict() == {"executor_id": "exec-1", "callset_id": "M000"}
        assert bare.ids == ()

    def test_nested_bind_merges_and_restores(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        with tracer.bind(executor_id="exec-1"):
            with tracer.bind(call_id="00007"):
                tracer.point("worker.run", "worker", t=0.0)
            tracer.point("client.invoke", "client", t=0.0)
        inner, outer = tracer.raw_events()
        assert inner.id_dict() == {"executor_id": "exec-1", "call_id": "00007"}
        assert outer.id_dict() == {"executor_id": "exec-1"}

    def test_explicit_ids_override_ambient(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        with tracer.bind(executor_id="exec-1", attempt=1):
            tracer.point("client.invoke", "client", t=0.0, ids={"attempt": 3})
        (event,) = tracer.events()
        assert event.get_id("attempt") == 3
        assert event.get_id("executor_id") == "exec-1"


class TestSubscribers:
    def test_listener_sees_live_events_until_unsubscribed(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        seen: list[TraceEvent] = []
        unsubscribe = tracer.subscribe(seen.append)
        tracer.point("client.progress", "client", t=1.0, done=3)
        unsubscribe()
        tracer.point("client.progress", "client", t=2.0, done=4)
        assert [e.get_attr("done") for e in seen] == [3]
        assert len(tracer) == 2  # collection is unaffected by listeners

    def test_unsubscribe_is_idempotent(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        unsubscribe = tracer.subscribe(lambda e: None)
        unsubscribe()
        unsubscribe()


class TestOrdering:
    def test_events_sort_is_interleaving_independent(self, kernel):
        a = point("client.invoke", "client", 1.0, {"call_id": "00000"}, None)
        b = span("worker.run", "worker", 1.0, 2.0, {"call_id": "00000"}, None)
        c = point("client.invoke", "client", 0.5, {"call_id": "00001"}, None)
        for order in ([a, b, c], [c, b, a], [b, a, c]):
            tracer = Tracer(kernel, enabled=True)
            for event in order:
                tracer._append(event)
            assert tracer.events() == [c, a, b]

    def test_clear(self, kernel):
        tracer = Tracer(kernel, enabled=True)
        tracer.point("net.request", "net", t=0.0)
        tracer.clear()
        assert len(tracer) == 0
