"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.environment import CloudEnvironment
from repro.faas.limits import SystemLimits
from repro.net.latency import LatencyModel
from repro.vtime import Kernel


@pytest.fixture()
def kernel() -> Kernel:
    return Kernel()


@pytest.fixture()
def cloud():
    """Factory for fresh cloud environments (one kernel per environment).

    Usage::

        def test_something(cloud):
            env = cloud()                  # or cloud(client="lan", seed=7)
            result = env.run(main)
    """

    def _make(
        client: str = "wan",
        seed: int = 123,
        limits: SystemLimits | None = None,
        chaos=None,
        **config_kwargs,
    ) -> CloudEnvironment:
        latency = {
            "wan": LatencyModel.wan,
            "lan": LatencyModel.lan,
            "in_cloud": LatencyModel.in_cloud,
        }[client]()
        env = CloudEnvironment.create(
            client_latency=latency, limits=limits, seed=seed, chaos=chaos
        )
        if config_kwargs:
            env.config = env.config.with_overrides(**config_kwargs)
        return env

    return _make


@pytest.fixture()
def env(cloud) -> CloudEnvironment:
    """A default WAN-client environment."""
    return cloud()
