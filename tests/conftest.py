"""Shared fixtures for the test suite."""

from __future__ import annotations

import threading

import pytest

from repro.core.environment import CloudEnvironment
from repro.faas.limits import SystemLimits
from repro.net.latency import LatencyModel
from repro.vtime import Kernel, live_kernels


def _kernel_threads() -> list[threading.Thread]:
    """OS threads owned by any virtual-time kernel (pool workers + loop)."""
    return [
        t
        for t in threading.enumerate()
        if t.name == "vloop" or t.name.startswith("vpool-")
    ]


@pytest.fixture(autouse=True)
def _kernel_thread_hygiene():
    """No kernel threads may leak across tests.

    Any kernel a test creates must be shut down (``kernel.run`` does this
    itself) before the next test starts; otherwise pooled workers and the
    model loop pile up silently across the suite.  The fixture shuts down
    kernels the test left alive — idempotent for already-finished runs —
    then asserts the process-wide kernel-thread population did not grow.
    """
    before_threads = set(_kernel_threads())
    before_kernels = set(live_kernels())
    yield
    for kernel in live_kernels():
        if kernel not in before_kernels:
            kernel.shutdown()
    leaked = [
        t for t in _kernel_threads() if t.is_alive() and t not in before_threads
    ]
    assert not leaked, (
        f"test leaked kernel threads: {sorted(t.name for t in leaked)}"
    )


@pytest.fixture()
def kernel() -> Kernel:
    return Kernel()


@pytest.fixture()
def cloud():
    """Factory for fresh cloud environments (one kernel per environment).

    Usage::

        def test_something(cloud):
            env = cloud()                  # or cloud(client="lan", seed=7)
            result = env.run(main)
    """

    def _make(
        client: str = "wan",
        seed: int = 123,
        limits: SystemLimits | None = None,
        chaos=None,
        **config_kwargs,
    ) -> CloudEnvironment:
        latency = {
            "wan": LatencyModel.wan,
            "lan": LatencyModel.lan,
            "in_cloud": LatencyModel.in_cloud,
        }[client]()
        env = CloudEnvironment.create(
            client_latency=latency, limits=limits, seed=seed, chaos=chaos
        )
        if config_kwargs:
            env.config = env.config.with_overrides(**config_kwargs)
        return env

    return _make


@pytest.fixture()
def env(cloud) -> CloudEnvironment:
    """A default WAN-client environment."""
    return cloud()
