"""Every example script must run green — they are part of the API contract."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": "map result: [10, 13, 16]",
    "mergesort_composition.py": "sorted correctly",
    "dag_mergesort.py": "before the slowest sort finished",
    "wordcount.py": "distinct tokens",
    "montecarlo_pi.py": "pi ~= 3.14",
    "custom_runtime.py": "warm container",
    "airbnb_tone_map.py": "analyzed 33 cities",
    "shuffle_wordcount.py": "reducers in",
    "push_monitoring.py": "MQ push",
    "operations_demo.py": "billing summary",
    "resume_mergesort.py": "resumed after the crash",
    "scan_pushdown.py": "pruned",
    "streaming_windows.py": "map partials reused across overlaps",
    "review_analytics.py": "rolled up",
}


def example_scripts() -> list[pathlib.Path]:
    return sorted(EXAMPLES_DIR.glob("*.py"))


def test_every_example_has_an_expectation():
    names = {p.name for p in example_scripts()}
    assert names == set(EXPECTED_OUTPUT), (
        "examples and EXPECTED_OUTPUT out of sync"
    )


@pytest.mark.parametrize(
    "script", example_scripts(), ids=lambda p: p.name
)
def test_example_runs_green(script: pathlib.Path, tmp_path):
    # the subprocess runs from a scratch cwd, so it needs the repo's src/
    # on PYTHONPATH explicitly (prepended, in case the caller set one)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # artifacts (SVG maps) land in a scratch dir
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_OUTPUT[script.name] in result.stdout
