"""Every example script must run green — they are part of the API contract."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": "map result: [10, 13, 16]",
    "mergesort_composition.py": "sorted correctly",
    "wordcount.py": "distinct tokens",
    "montecarlo_pi.py": "pi ~= 3.14",
    "custom_runtime.py": "warm container",
    "airbnb_tone_map.py": "analyzed 33 cities",
    "shuffle_wordcount.py": "reducers in",
    "push_monitoring.py": "MQ push",
    "operations_demo.py": "billing summary",
}


def example_scripts() -> list[pathlib.Path]:
    return sorted(EXAMPLES_DIR.glob("*.py"))


def test_every_example_has_an_expectation():
    names = {p.name for p in example_scripts()}
    assert names == set(EXPECTED_OUTPUT), (
        "examples and EXPECTED_OUTPUT out of sync"
    )


@pytest.mark.parametrize(
    "script", example_scripts(), ids=lambda p: p.name
)
def test_example_runs_green(script: pathlib.Path, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # artifacts (SVG maps) land in a scratch dir
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_OUTPUT[script.name] in result.stdout
