"""Tests for serverless mergesort (real data, nested parallelism)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as pw
from repro.sort import local_mergesort, merge, serverless_mergesort


class TestMerge:
    def test_basic(self):
        assert merge([1, 3, 5], [2, 4]) == [1, 2, 3, 4, 5]

    def test_empty_sides(self):
        assert merge([], [1, 2]) == [1, 2]
        assert merge([1, 2], []) == [1, 2]
        assert merge([], []) == []

    def test_duplicates_stable(self):
        assert merge([1, 2, 2], [2, 3]) == [1, 2, 2, 2, 3]

    @given(
        left=st.lists(st.integers(), max_size=50),
        right=st.lists(st.integers(), max_size=50),
    )
    def test_merge_property(self, left, right):
        assert merge(sorted(left), sorted(right)) == sorted(left + right)


class TestLocalMergesort:
    def test_examples(self):
        assert local_mergesort([3, 1, 2]) == [1, 2, 3]
        assert local_mergesort([]) == []
        assert local_mergesort([1]) == [1]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(), max_size=200))
    def test_matches_sorted(self, values):
        assert local_mergesort(values) == sorted(values)


class TestServerlessMergesort:
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_sorts_correctly_at_every_depth(self, cloud, depth):
        env = cloud()
        rng = random.Random(depth)
        array = [rng.randrange(10_000) for _ in range(500)]

        def main():
            return serverless_mergesort(array, depth=depth).result()

        assert env.run(main) == sorted(array)

    def test_function_tree_size(self, cloud):
        env = cloud()
        array = list(range(64, 0, -1))

        def main():
            result = serverless_mergesort(array, depth=2).result()
            runners = [
                r
                for r in env.platform.activations()
                if r.action_name.startswith("pywren_runner")
            ]
            return result, len(runners)

        result, n_functions = env.run(main)
        assert result == sorted(array)
        assert n_functions == 7  # complete binary tree of depth 2

    def test_negative_depth_rejected(self, cloud):
        env = cloud()

        def main():
            with pytest.raises(ValueError):
                serverless_mergesort([1], depth=-1)
            return True

        assert env.run(main)

    def test_depth_exceeding_log_n_still_correct(self, cloud):
        env = cloud()

        def main():
            return serverless_mergesort([5, 3], depth=3).result()

        assert env.run(main) == [3, 5]

    def test_nonblocking_returns_future(self, cloud):
        env = cloud()

        def main():
            future = serverless_mergesort([2, 1], depth=0)
            assert isinstance(future, pw.ResponseFuture)
            return future.result()

        assert env.run(main) == [1, 2]

    def test_sorts_strings(self, cloud):
        env = cloud()
        array = ["pear", "apple", "fig", "date"]

        def main():
            return serverless_mergesort(array, depth=1).result()

        assert env.run(main) == sorted(array)
