"""Unit tests for the cluster-wide cache plane (directory + node caches)."""

from __future__ import annotations

import pytest

from repro.cache import CachePlane
from repro.config import CacheConfig


def make_plane(n_nodes=4, **overrides) -> CachePlane:
    defaults = dict(enabled=True, node_budget_bytes=1024)
    defaults.update(overrides)
    return CachePlane(CacheConfig(**defaults), n_nodes)


class TestDirectory:
    def test_publish_registers_exclusively(self):
        plane = make_plane()
        plane.publish("k", b"v1", 0, "c-0")
        plane.admit("k", b"v1", 1, "c-1")
        assert plane.holders("k") == [0, 1]
        # a fresh write supersedes every older copy
        plane.publish("k", b"v2", 2, "c-2")
        assert plane.holders("k") == [2]
        assert plane.local_get("k", 0) is None
        assert plane.local_get("k", 1) is None
        assert plane.local_get("k", 2) == b"v2"
        assert plane.stats()["evictions"].get("invalidate", 0) == 2

    def test_locate_prunes_stale_entries(self):
        plane = make_plane()
        plane.publish("k", b"data", 0, "c-0")
        plane.admit("k", b"data", 1, "c-1")
        # entry vanishes from node 1's memory without telling the directory
        plane.node(1).drop("k")
        assert plane.locate("k") == [(0, 4)]
        assert plane.holders("k") == [0]  # the stale record was pruned

    def test_directory_owner_matches_ring(self):
        plane = make_plane(n_nodes=5)
        for key in ("a", "b", "shuffle/part-0"):
            assert plane.directory_owner(key) == plane.ring.owner(key)

    def test_over_budget_publish_not_registered(self):
        plane = make_plane(node_budget_bytes=4)
        plane.publish("k", b"toolarge", 0, "c-0")
        assert plane.holders("k") == []
        assert plane.local_get("k", 0) is None


class TestPeerGet:
    def test_returns_lowest_live_holder_excluding_reader(self):
        plane = make_plane()
        plane.publish("k", b"v", 1, "c-1")
        plane.admit("k", b"v", 3, "c-3")
        blob, src = plane.peer_get("k", reader_node=3)
        assert (blob, src) == (b"v", 1)
        blob, src = plane.peer_get("k", reader_node=1)
        assert (blob, src) == (b"v", 3)

    def test_no_live_peer_returns_none(self):
        plane = make_plane()
        plane.publish("k", b"v", 2, "c-2")
        assert plane.peer_get("k", reader_node=2) is None
        assert plane.peer_get("absent", reader_node=0) is None


class TestInvalidation:
    def test_invalidate_drops_every_copy(self):
        plane = make_plane()
        plane.publish("k", b"v", 0, "c-0")
        plane.admit("k", b"v", 2, "c-2")
        plane.invalidate("k")
        assert plane.holders("k") == []
        assert plane.local_get("k", 0) is None
        assert plane.local_get("k", 2) is None

    def test_invalidate_prefix(self):
        plane = make_plane()
        plane.publish("job/a/part-0", b"v", 0, "c-0")
        plane.publish("job/a/part-1", b"v", 1, "c-1")
        plane.publish("job/b/part-0", b"v", 2, "c-2")
        plane.invalidate_prefix("job/a/")
        assert plane.holders("job/a/part-0") == []
        assert plane.holders("job/a/part-1") == []
        assert plane.holders("job/b/part-0") == [2]


class TestContainerReclaim:
    def test_reclaim_drops_entries_and_counts_reason(self):
        plane = make_plane()
        plane.publish("k1", b"x" * 10, 0, "c-dead")
        plane.publish("k2", b"x" * 20, 0, "c-dead")
        plane.publish("k3", b"x" * 30, 0, "c-alive")
        dropped = plane.reclaim_container(0, "c-dead", "crash")
        assert dropped == 30
        assert plane.holders("k1") == []
        assert plane.holders("k2") == []
        assert plane.holders("k3") == [0]
        assert plane.stats()["evictions"] == {"crash": 2}

    def test_reader_falls_back_after_crash(self):
        plane = make_plane()
        plane.publish("k", b"v", 1, "c-dead")
        plane.reclaim_container(1, "c-dead", "crash")
        # every lookup path comes up empty: the reader goes to COS
        assert plane.local_get("k", 1) is None
        assert plane.peer_get("k", reader_node=0) is None
        assert plane.locate("k") == []


class TestCostModelAndStats:
    def test_delay_formulas(self):
        plane = make_plane(
            hit_latency_s=1e-4,
            memory_bandwidth_bps=1000.0,
            peer_bandwidth_bps=500.0,
        )
        assert plane.hit_delay(100) == pytest.approx(1e-4 + 0.1)
        assert plane.peer_transfer_delay(100) == pytest.approx(0.2)

    def test_note_read_aggregates_by_source(self):
        plane = make_plane()
        plane.note_read("local", 10, 0.1)
        plane.note_read("peer", 20, 0.2)
        plane.note_read("cos", 30, 0.3)
        plane.note_read("cos", 40, 0.4)
        plane.note_peer_failure()
        stats = plane.stats()
        assert stats["local_hits"] == 1
        assert stats["peer_hits"] == 1
        assert stats["cos_misses"] == 2
        assert stats["peer_failures"] == 1
        assert stats["bytes_from_memory"] == 10
        assert stats["bytes_from_peers"] == 20
        assert stats["bytes_from_cos"] == 70
        assert stats["intermediate_reads"] == 4
        assert stats["read_seconds_total"] == pytest.approx(1.0)

    def test_resident_bytes_and_lru_eviction_deregisters(self):
        plane = make_plane(node_budget_bytes=10)
        plane.publish("a", b"x" * 10, 0, "c-0")
        assert plane.stats()["resident_bytes"] == 10
        plane.publish("b", b"y" * 10, 0, "c-0")  # LRU-evicts "a"
        assert plane.holders("a") == []
        assert plane.holders("b") == [0]
        assert plane.stats()["evictions"].get("lru", 0) == 1
        assert plane.stats()["resident_bytes"] == 10
