"""End-to-end cache-tier tests against the emulated cloud.

Covers the acceptance points ISSUE 5 names: intermediates are actually
served from memory when the tier is on, answers never change, crash-loss
under the ``crashy-workers`` chaos profile falls back to COS
transparently, and same-seed cached runs stay byte-deterministic.
"""

from __future__ import annotations

import repro as pw
from repro.chaos import ChaosProfile
from repro.core.environment import CloudEnvironment
from repro.core.shuffle import merge_shuffle_results

SEED = 123

DOCS = [
    "cloud functions run python",
    "python functions scale",
    "cloud scale cloud",
    "serverless data analytics",
    "data shuffle data",
    "analytics in the cloud",
]

EXPECTED = {}
for _doc in DOCS:
    for _word in _doc.split():
        EXPECTED[_word] = EXPECTED.get(_word, 0) + 1


def _word_pairs(text):
    return [(word, 1) for word in text.split()]


def _count(key, values):
    del key
    return sum(values)


def _wordcount(env):
    def main():
        executor = pw.ibm_cf_executor()
        reducers = executor.map_reduce_shuffle(
            _word_pairs, DOCS, _count, n_reducers=3
        )
        return merge_shuffle_results(executor.get_result(reducers))

    return env.run(main)


class TestCachedExchange:
    def test_shuffle_reads_served_from_memory(self):
        env = CloudEnvironment.create(
            seed=SEED, cache=pw.CacheConfig(enabled=True)
        )
        assert _wordcount(env) == EXPECTED
        stats = env.cache.stats()
        assert stats["local_hits"] + stats["peer_hits"] > 0
        # nothing in this run exceeds a node budget, so no read missed
        assert stats["cos_misses"] == 0
        assert stats["read_seconds_total"] > 0.0

    def test_answers_identical_with_and_without_cache(self):
        plain = CloudEnvironment.create(seed=SEED)
        cached = CloudEnvironment.create(
            seed=SEED, cache=pw.CacheConfig(enabled=True)
        )
        assert plain.cache is None  # off by default
        assert _wordcount(plain) == _wordcount(cached) == EXPECTED

    def test_zero_budget_plane_matches_disabled_timing(self):
        """The instrumented cos-only mode is timing-neutral (bench baseline)."""
        plain = CloudEnvironment.create(seed=SEED)
        neutered = CloudEnvironment.create(
            seed=SEED,
            cache=pw.CacheConfig(
                enabled=True,
                node_budget_bytes=0,
                peer_fetch=False,
                populate_on_miss=False,
            ),
        )
        assert _wordcount(plain) == _wordcount(neutered) == EXPECTED
        assert plain.now() == neutered.now()
        stats = neutered.cache.stats()
        assert stats["local_hits"] == stats["peer_hits"] == 0
        assert stats["cos_misses"] == stats["intermediate_reads"] > 0


class TestCrashLossFallback:
    def test_crashy_workers_fall_back_to_cos(self):
        """Containers die mid-job; readers must never depend on residency."""
        env = CloudEnvironment.create(
            seed=SEED,
            cache=pw.CacheConfig(enabled=True),
            chaos=ChaosProfile("crashy-workers", seed=3, crash_prob=0.3),
        )
        assert _wordcount(env) == EXPECTED
        # crashes actually happened ...
        assert env.chaos.fault_counts().get("container:crash", 0) >= 1
        stats = env.cache.stats()
        # ... crash reclaim dropped cached entries with the dying containers
        assert stats["evictions"].get("crash", 0) >= 1
        # ... and readers whose copies died transparently went to COS
        assert stats["cos_misses"] >= 1
        assert stats["intermediate_reads"] > 0

    def test_chaos_answer_matches_clean_run(self):
        clean = CloudEnvironment.create(
            seed=SEED, cache=pw.CacheConfig(enabled=True)
        )
        chaotic = CloudEnvironment.create(
            seed=SEED,
            cache=pw.CacheConfig(enabled=True),
            chaos=ChaosProfile("crashy-workers", seed=3, crash_prob=0.3),
        )
        assert _wordcount(clean) == _wordcount(chaotic) == EXPECTED


class TestDeterminism:
    def _traced_run(self):
        env = CloudEnvironment.create(
            seed=SEED, trace=True, cache=pw.CacheConfig(enabled=True)
        )

        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce_shuffle(
                _word_pairs, DOCS, _count, n_reducers=3
            )
            merged = merge_shuffle_results(executor.get_result(reducers))
            return merged, executor.executor_id, executor.trace_jsonl()

        merged, executor_id, jsonl = env.run(main)
        assert merged == EXPECTED
        return jsonl.replace(executor_id, "EXEC")

    def test_same_seed_cached_traces_byte_identical(self):
        first = self._traced_run()
        second = self._traced_run()
        assert first != ""
        assert first == second
        # the cache layer itself showed up in the trace
        assert '"layer": "cache"' in first or '"cache"' in first
