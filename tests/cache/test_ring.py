"""Peer-lookup consistency: the consistent-hash directory ring.

Every participant — producers registering, readers consulting, the
locality hint peeking — must compute the *same* owner for the same key,
across processes and runs.  That is what these tests pin.
"""

from __future__ import annotations

import pytest

from repro.cache import HashRing


class TestConsistency:
    def test_owner_stable_across_instances(self):
        a = HashRing(8)
        b = HashRing(8)
        keys = [f"pywren.jobs/exec/{i:03d}/result.pickle" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_owner_is_deterministic_function_of_key(self):
        ring = HashRing(5)
        for key in ("alpha", "beta", "", "shuffle/part-00003", "日本語"):
            assert ring.owner(key) == ring.owner(key)

    def test_owners_in_range(self):
        ring = HashRing(7)
        for i in range(500):
            assert 0 <= ring.owner(f"key-{i}") < 7

    def test_single_node_owns_everything(self):
        ring = HashRing(1)
        assert {ring.owner(f"k{i}") for i in range(50)} == {0}


class TestDistribution:
    def test_every_node_gets_keys(self):
        ring = HashRing(4)
        owners = {ring.owner(f"key-{i}") for i in range(1000)}
        assert owners == {0, 1, 2, 3}

    def test_shares_sum_to_one(self):
        ring = HashRing(6)
        shares = ring.shares()
        assert set(shares) == set(range(6))
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_vnodes_smooth_the_assignment(self):
        # with 64 vnodes per node, no node's arc strays wildly from 1/n
        shares = HashRing(4, vnodes=64).shares()
        for share in shares.values():
            assert 0.05 < share < 0.60

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(4, vnodes=0)
