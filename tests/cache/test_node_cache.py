"""Unit tests for the per-node byte-budgeted LRU cache.

The two invariants that matter for the determinism contract are pinned
here: recency is virtual time with a key tiebreak (so the victim choice
is a pure function of the simulated history), and the byte budget is a
hard ceiling (used_bytes never exceeds it, oversize objects are simply
not cached).
"""

from __future__ import annotations

import pytest

from repro.cache import NodeCache


class _Clock:
    """A hand-cranked stand-in for the kernel clock."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture()
def clock():
    return _Clock()


class TestEvictionOrder:
    def test_victim_is_least_recently_used(self, clock):
        cache = NodeCache(0, budget_bytes=30, clock=clock)
        for step, key in enumerate("abc"):
            clock.t = float(step)
            cache.put(key, b"x" * 10, "c-1")
        clock.t = 3.0
        assert cache.get("a") == b"x" * 10  # refresh "a"
        clock.t = 4.0
        evicted = cache.put("d", b"x" * 10, "c-1")
        assert evicted == [("b", 10)]
        assert cache.keys() == ["a", "c", "d"]

    def test_equal_recency_breaks_ties_by_key(self, clock):
        cache = NodeCache(0, budget_bytes=20, clock=clock)
        # both entries land at the same virtual instant: the victim must
        # be chosen by key, not by insertion or OS-thread order
        cache.put("zeta", b"x" * 10, None)
        cache.put("alpha", b"x" * 10, None)
        evicted = cache.put("mid", b"x" * 10, None)
        assert evicted == [("alpha", 10)]
        assert "zeta" in cache

    def test_get_refreshes_recency_but_peek_does_not(self, clock):
        cache = NodeCache(0, budget_bytes=20, clock=clock)
        cache.put("old", b"x" * 10, None)
        clock.t = 1.0
        cache.put("new", b"x" * 10, None)
        clock.t = 2.0
        assert cache.peek_size("old") == 10  # no recency touch
        evicted = cache.put("third", b"x" * 10, None)
        assert evicted == [("old", 10)]

    def test_reput_refreshes_existing_entry(self, clock):
        cache = NodeCache(0, budget_bytes=20, clock=clock)
        cache.put("a", b"x" * 10, None)
        clock.t = 1.0
        cache.put("b", b"x" * 10, None)
        clock.t = 2.0
        cache.put("a", b"y" * 10, None)  # refresh + replace blob
        evicted = cache.put("c", b"x" * 10, None)
        assert evicted == [("b", 10)]
        assert cache.get("a") == b"y" * 10

    def test_eviction_cascades_until_room(self, clock):
        cache = NodeCache(0, budget_bytes=30, clock=clock)
        for step, key in enumerate("abc"):
            clock.t = float(step)
            cache.put(key, b"x" * 10, None)
        evicted = cache.put("big", b"x" * 15, None)
        assert evicted == [("a", 10), ("b", 10)]
        assert cache.keys() == ["big", "c"]


class TestByteBudget:
    def test_used_bytes_never_exceeds_budget(self, clock):
        cache = NodeCache(0, budget_bytes=100, clock=clock)
        for i in range(50):
            clock.t = float(i)
            cache.put(f"k{i:03d}", b"x" * (7 + i % 13), None)
            assert cache.used_bytes <= 100
        assert cache.used_bytes <= 100
        assert cache.evictions > 0

    def test_oversize_object_is_not_cached(self, clock):
        cache = NodeCache(0, budget_bytes=10, clock=clock)
        cache.put("small", b"x" * 5, None)
        evicted = cache.put("huge", b"x" * 11, None)
        # nothing is evicted to make room for an object that can never fit
        assert evicted == []
        assert "huge" not in cache
        assert "small" in cache

    def test_reput_reclaims_old_bytes_first(self, clock):
        cache = NodeCache(0, budget_bytes=10, clock=clock)
        cache.put("a", b"x" * 8, None)
        evicted = cache.put("a", b"y" * 10, None)  # fits once old "a" goes
        assert evicted == []
        assert cache.used_bytes == 10

    def test_zero_budget_stores_nothing(self, clock):
        cache = NodeCache(0, budget_bytes=0, clock=clock)
        assert cache.put("a", b"x", None) == []
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            NodeCache(0, budget_bytes=-1)


class TestContainerTagging:
    def test_drop_container_removes_only_its_entries(self, clock):
        cache = NodeCache(0, budget_bytes=100, clock=clock)
        cache.put("b", b"x" * 10, "c-1")
        cache.put("a", b"x" * 20, "c-1")
        cache.put("c", b"x" * 30, "c-2")
        dropped = cache.drop_container("c-1")
        assert dropped == [("a", 20), ("b", 10)]  # sorted keys
        assert cache.keys() == ["c"]
        assert cache.used_bytes == 30

    def test_container_bytes(self, clock):
        cache = NodeCache(0, budget_bytes=100, clock=clock)
        cache.put("a", b"x" * 10, "c-1")
        cache.put("b", b"x" * 20, "c-2")
        assert cache.container_bytes("c-1") == 10
        assert cache.container_bytes("c-2") == 20
        assert cache.container_bytes("absent") == 0

    def test_drop_absent_key_returns_none(self, clock):
        cache = NodeCache(0, budget_bytes=100, clock=clock)
        assert cache.drop("nope") is None
        cache.put("a", b"x" * 4, None)
        assert cache.drop("a") == 4
        assert cache.used_bytes == 0


class TestCounters:
    def test_hit_miss_insert_evict_counts(self, clock):
        cache = NodeCache(0, budget_bytes=10, clock=clock)
        assert cache.get("a") is None
        cache.put("a", b"x" * 10, None)
        clock.t = 1.0
        assert cache.get("a") is not None
        cache.put("b", b"x" * 10, None)  # evicts "a"
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.insertions == 2
        assert cache.evictions == 1
