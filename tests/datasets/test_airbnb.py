"""Tests for the synthetic Airbnb dataset (Table 3's input)."""

from __future__ import annotations

import pytest

from repro.datasets import airbnb


class TestShape:
    def test_33_cities(self):
        assert len(airbnb.CITIES) == 33
        assert len(set(airbnb.CITIES)) == 33

    def test_total_size_is_1_9_gb(self):
        sizes = airbnb.city_sizes()
        assert sum(sizes.values()) == airbnb.TOTAL_SIZE == 1_900_000_000

    def test_comment_counts_sum_exactly(self):
        counts = airbnb.city_comment_counts()
        assert sum(counts.values()) == airbnb.TOTAL_COMMENTS == 3_695_107

    def test_sizes_variable_with_heavy_head(self):
        """'Each city dataset has variable size.'"""
        sizes = airbnb.city_sizes()
        assert max(sizes.values()) > 5 * min(sizes.values())
        assert sizes["new-york"] == max(sizes.values())

    def test_scaled_total(self):
        sizes = airbnb.city_sizes(total_size=1_000_000)
        assert sum(sizes.values()) == 1_000_000

    @pytest.mark.parametrize(
        "chunk_mb,paper_count",
        [(64, 47), (32, 72), (16, 129), (8, 242), (4, 471), (2, 923)],
    )
    def test_partition_counts_match_table3(self, chunk_mb, paper_count):
        """Table 3's concurrency column, within a few executors."""
        chunk = chunk_mb * 1024 * 1024
        count = sum(-(-s // chunk) for s in airbnb.city_sizes().values())
        assert abs(count - paper_count) / paper_count < 0.06

    def test_all_cities_have_coords(self):
        for city in airbnb.CITIES:
            lat, lon = airbnb.CITY_COORDS[city]
            assert -90 <= lat <= 90
            assert -180 <= lon <= 180


class TestContent:
    def test_deterministic(self):
        fn = airbnb.make_review_content_fn("paris")
        assert fn(0, 500) == airbnb.make_review_content_fn("paris")(0, 500)

    def test_cities_differ(self):
        a = airbnb.make_review_content_fn("paris")(0, 500)
        b = airbnb.make_review_content_fn("rome")(0, 500)
        assert a != b

    def test_subrange_consistency(self):
        fn = airbnb.make_review_content_fn("berlin")
        whole = fn(0, 20_000)
        assert fn(5_000, 12_345) == whole[5_000:12_345]

    def test_lines_are_csv_reviews(self):
        fn = airbnb.make_review_content_fn("london")
        lines = fn(0, 8192).decode("ascii").split("\n")
        complete = [l for l in lines[:-1] if l]
        assert len(complete) >= 5
        for line in complete:
            lat_s, lon_s, text = line.split(",", 2)
            lat, lon = float(lat_s), float(lon_s)
            # points jitter around the city center
            assert abs(lat - airbnb.CITY_COORDS["london"][0]) < 0.2
            assert abs(lon - airbnb.CITY_COORDS["london"][1]) < 0.2
            assert len(text.split()) >= 10

    def test_average_line_near_paper_comment_size(self):
        """1.9 GB / 3,695,107 comments ~= 514 bytes per comment."""
        data = airbnb.make_review_content_fn("madrid")(0, 65536)
        n_lines = data.count(b"\n")
        avg = len(data) / n_lines
        assert 380 <= avg <= 650

    def test_positivity_varies_by_city(self):
        values = {airbnb.city_positivity(c) for c in airbnb.CITIES}
        assert len(values) > 10
        assert all(0.30 <= v <= 0.81 for v in values)


class TestLoad:
    def test_load_dataset_creates_virtual_objects(self, kernel):
        from repro.cos import CloudObjectStorage

        store = CloudObjectStorage(kernel)
        loaded = airbnb.load_dataset(store, total_size=33_000)
        assert len(loaded) == 33
        keys = store.list_keys(airbnb.DEFAULT_BUCKET)
        assert all(k.startswith("reviews/") and k.endswith(".csv") for k in keys)
        obj = store.get_object(airbnb.DEFAULT_BUCKET, keys[0])
        assert obj.is_virtual
        assert obj.metadata["city"] in airbnb.CITIES
