"""Tests for the synthetic word corpus."""

from __future__ import annotations

from repro.cos import CloudObjectStorage
from repro.datasets import words


class TestGeneration:
    def test_document_word_count(self):
        assert len(words.generate_document(100).split()) == 100

    def test_deterministic(self):
        assert words.generate_document(50, seed=3) == words.generate_document(50, seed=3)

    def test_seeds_differ(self):
        assert words.generate_document(50, seed=1) != words.generate_document(50, seed=2)

    def test_corpus_shape(self):
        corpus = words.generate_corpus(5, words_per_doc=20)
        assert len(corpus) == 5
        assert all(len(doc.split()) == 20 for doc in corpus)


class TestLoad:
    def test_load_corpus(self, kernel):
        store = CloudObjectStorage(kernel)
        keys = words.load_corpus(store, n_docs=4, words_per_doc=10)
        assert len(keys) == 4
        for key in keys:
            doc = store.get_object("corpus", key).read().decode()
            assert len(doc.split()) == 10

    def test_custom_bucket(self, kernel):
        store = CloudObjectStorage(kernel)
        words.load_corpus(store, bucket="texts", n_docs=1)
        assert store.bucket_exists("texts")
