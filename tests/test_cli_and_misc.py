"""Tests for the top-level CLI, COS copy, and executor.plot()."""

from __future__ import annotations

import pytest

import repro as pw
from repro.__main__ import main as repro_main
from repro.cos import CloudObjectStorage, COSClient
from repro.net import LatencyModel, NetworkLink


class TestTopLevelCli:
    def test_version(self, capsys):
        assert repro_main(["version"]) == 0
        assert pw.__version__ in capsys.readouterr().out

    def test_quickstart(self, capsys):
        assert repro_main(["quickstart"]) == 0
        assert "[10, 13, 16]" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert repro_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "sum of squares" in out
        assert "billing summary" in out

    def test_bench_delegation(self, capsys):
        assert repro_main(["bench", "table3", "--chunks", "64"]) == 0
        assert "No / Sequential" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert repro_main(["wat"]) == 2

    def test_no_command_prints_usage(self, capsys):
        assert repro_main([]) == 2
        assert "Subcommands" in capsys.readouterr().out


class TestCopyObject:
    def test_copy_bytes_object(self, kernel):
        def main():
            store = CloudObjectStorage(kernel)
            store.create_bucket("a")
            store.create_bucket("b")
            store.put_object("a", "src", b"payload", metadata={"k": "v"})
            copied = store.copy_object("a", "src", "b", "dst")
            return copied.read(), copied.metadata, store.get_object("b", "dst").size

        data, metadata, size = kernel.run(main)
        assert data == b"payload"
        assert metadata == {"k": "v"}
        assert size == 7

    def test_copy_virtual_object_keeps_generator(self, kernel):
        def main():
            store = CloudObjectStorage(kernel)
            store.create_bucket("a")
            store.put_virtual_object(
                "a", "big", size=1000, content_fn=lambda s, e: b"z" * (e - s)
            )
            copied = store.copy_object("a", "big", "a", "big2")
            return copied.is_virtual, copied.read(0, 5)

        assert kernel.run(main) == (True, b"zzzzz")

    def test_client_copy_is_control_plane_only(self, kernel):
        def main():
            store = CloudObjectStorage(kernel)
            store.create_bucket("a")
            store.put_object("a", "src", b"x" * 10_000_000)
            link = NetworkLink(
                kernel, LatencyModel(rtt=0.1, jitter=0.0), bandwidth_bps=1000, seed=1
            )
            client = COSClient(store, link)
            t0 = kernel.now()
            client.copy_object("a", "src", "a", "dst")
            return kernel.now() - t0

        # one RTT, not 10 MB over a 1 KB/s link
        assert kernel.run(main) == pytest.approx(0.1)

    def test_bucket_size(self, kernel):
        def main():
            store = CloudObjectStorage(kernel)
            store.create_bucket("a")
            store.put_object("a", "x/1", b"abc")
            store.put_virtual_object("a", "x/2", size=100)
            store.put_object("a", "y/3", b"d")
            return store.bucket_size("a"), store.bucket_size("a", prefix="x/")

        assert kernel.run(main) == (104, 103)


class TestExecutorPlot:
    def test_plot_produces_timeline_svg(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def busy(_):
                pw.sleep(20)

            executor.get_result(executor.map(busy, [0] * 6))
            return executor.plot()

        svg = env.run(main)
        assert svg.startswith("<svg")
        assert "6 functions" in svg
        assert "peak concurrency: 6" in svg
