"""Advanced flow integration tests: futures across boundaries, chaining,
cost accounting, timeline artifacts."""

from __future__ import annotations

import pickle

import pytest

import repro as pw


class TestFuturesAcrossBoundaries:
    def test_pickled_future_resolvable_after_rebinding(self, env):
        """Futures are pure references: a pickled copy, re-bound to the
        same internal storage, resolves to the same result."""

        def main():
            executor = pw.ibm_cf_executor()
            future = executor.call_async(lambda x: x * 3, 14)
            future.result()
            clone = pickle.loads(pickle.dumps(future))
            assert not clone.bound
            clone.bind(executor._storage, executor.config.poll_interval)
            return clone.result()

        assert env.run(main) == 42

    def test_future_returned_through_cos_resolves(self, env):
        """A function can hand its *own* job's future to another function."""

        def main():
            executor = pw.ibm_cf_executor()

            def producer(_):
                inner = pw.ibm_cf_executor()
                return inner.call_async(lambda x: "payload", None)

            future = executor.call_async(producer, None)
            return future.result()

        assert env.run(main) == "payload"


class TestChainedJobs:
    def test_map_output_feeds_next_map(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            stage1 = executor.get_result(executor.map(lambda x: x * 2, [1, 2, 3]))
            stage2 = executor.get_result(executor.map(lambda x: x + 1, stage1))
            return stage2

        assert env.run(main) == [3, 5, 7]

    def test_fan_in_via_map_reduce_of_map_results(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            partials = executor.get_result(
                executor.map(lambda x: x**2, list(range(10)))
            )
            reducer = executor.map_reduce(
                lambda x: x, partials, lambda rs: sum(rs)
            )
            return executor.get_result(reducer)

        assert env.run(main) == sum(x**2 for x in range(10))

    def test_deep_sequence_chain(self, env):
        def main():
            fns = [lambda x, i=i: x + i for i in range(6)]
            return pw.sequence(fns, 0).result()

        assert env.run(main) == sum(range(6))


class TestCostAccounting:
    def test_table3_style_job_reports_cost(self, env):
        env.storage.create_bucket("mini")
        env.storage.put_object("mini", "obj", b"x" * 4000)

        def main():
            executor = pw.ibm_cf_executor()

            def busy_map(partition):
                pw.sleep(20)
                return partition.size

            reducer = executor.map_reduce(
                busy_map, "cos://mini", sum, chunk_size=1000
            )
            total = executor.get_result(reducer)
            billing = env.platform.billing
            return total, billing.activations, billing.total_gb_seconds()

        total, activations, gbs = env.run(main)
        assert total == 4000
        assert activations == 5  # 4 maps + 1 reducer
        # 4 maps x ~20s x 0.25 GB plus a short reducer
        assert gbs > 4 * 20 * 0.25

    def test_cost_by_action_separates_runner_and_invoker(self, env):
        def main():
            executor = pw.ibm_cf_executor(invoker_mode="massive")
            executor.get_result(executor.map(lambda x: x, list(range(20))))
            return env.platform.billing.by_action()

        by_action = env.run(main)
        assert any(name.startswith("pywren_runner") for name in by_action)
        assert "pywren_remote_invoker" in by_action


class TestTimelineArtifacts:
    def test_fig3_style_svg_from_job(self, env):
        from repro.analytics import intervals_from_records, render_execution_timeline

        def main():
            executor = pw.ibm_cf_executor(invoker_mode="massive")

            def busy(_):
                pw.sleep(60)

            executor.get_result(executor.map(busy, [0] * 30))
            intervals = intervals_from_records(
                env.platform.activations(), action_prefix="pywren_runner"
            )
            return render_execution_timeline(intervals, title="Fig3 style")

        svg = env.run(main)
        assert "30 functions" in svg
        assert "peak concurrency: 30" in svg


class TestJobStatsIntegration:
    def test_stats_match_activation_records(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def busy(_):
                pw.sleep(25)

            futures = executor.map(busy, [0] * 8)
            executor.get_result(futures)
            stats = pw.collect_job_stats(futures)
            records = [
                r
                for r in env.platform.activations()
                if r.action_name.startswith("pywren_runner")
            ]
            record_max = max(r.end_time - r.start_time for r in records)
            return stats, record_max

        stats, record_max = env.run(main)
        assert stats.n_calls == 8
        # status times bracket the user function; the activation record
        # additionally includes the worker's COS fetches (~tens of ms)
        assert stats.max_duration == pytest.approx(record_max, abs=0.5)
