"""End-to-end trace-spine tests: determinism and consumer equivalence.

The acceptance bar for the trace plane: running the same seeded job twice
exports byte-identical trace streams (after normalizing the process-global
executor id), and the stats / billing / timeline numbers derived from the
trace match what the legacy per-layer counters report.
"""

from __future__ import annotations

import pytest

import repro as pw
from repro.analytics.timeline import render_execution_timeline
from repro.config import InvokerMode
from repro.core.environment import CloudEnvironment
from repro.core.stats import collect_job_stats
from repro.faas.limits import SystemLimits
from repro.trace import derive


def _traced_env(seed: int = 7) -> CloudEnvironment:
    return CloudEnvironment.create(seed=seed, trace=True)


def _uneven(x):
    pw.sleep(10 + (x % 3) * 5)
    return x * x


class TestDeterminism:
    def _run_map_reduce(self, seed: int) -> str:
        """One full map_reduce; returns executor-id-normalized trace JSONL."""
        env = _traced_env(seed)

        def main():
            executor = pw.ibm_cf_executor()
            reducer = executor.map_reduce(_uneven, list(range(8)), sum)
            assert executor.get_result([reducer]) == [sum(x * x for x in range(8))]
            return executor.executor_id, executor.trace_jsonl()

        executor_id, jsonl = env.run(main)
        # the executor id comes from a process-global counter, so it is the
        # one token that differs between two same-seed runs in one process
        return jsonl.replace(executor_id, "EXEC")

    def test_same_seed_exports_identical_streams(self):
        first = self._run_map_reduce(seed=7)
        second = self._run_map_reduce(seed=7)
        assert first != ""
        assert first == second

    def test_different_seed_diverges(self):
        assert self._run_map_reduce(seed=7) != self._run_map_reduce(seed=8)


def _golden_task(x):
    """A threadless steps-generator function with input-dependent duration."""
    from repro.vtime.kernel import vsleep

    yield vsleep(5.0 + (x % 7))
    return x * x


class TestGoldenDeterminismAtScale:
    """The hybrid scheduler keeps the trace plane byte-deterministic even
    when 1,000 model tasks interleave on the kernel loop: same seed, same
    JSONL, byte for byte."""

    N = 1_000

    def _run_scale_map(self, seed: int) -> str:
        limits = SystemLimits(max_concurrent=self.N + 64, invoker_count=10)
        env = CloudEnvironment.create(seed=seed, limits=limits, trace=True)

        def main():
            executor = pw.ibm_cf_executor(invoker_mode=InvokerMode.MASSIVE)
            futures = executor.map(_golden_task, list(range(self.N)))
            assert executor.get_result(futures) == [
                x * x for x in range(self.N)
            ]
            return executor.executor_id, executor.trace_jsonl()

        executor_id, jsonl = env.run(main)
        return jsonl.replace(executor_id, "EXEC")

    def test_same_seed_1k_run_is_byte_identical(self):
        first = self._run_scale_map(seed=21)
        second = self._run_scale_map(seed=21)
        assert first != ""
        assert first.count("\n") > self.N  # at least one event per call
        assert first == second


class TestConsumerEquivalence:
    @pytest.fixture()
    def job(self):
        """One traced map job; returns (env, executor, futures) post-run."""
        env = _traced_env()
        holder = {}

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(_uneven, list(range(6)))
            executor.get_result(futures)
            holder["executor"] = executor
            holder["futures"] = futures

        env.run(main)
        return env, holder["executor"], holder["futures"]

    def test_job_stats_match_legacy_exactly(self, job):
        _env, executor, futures = job
        legacy = collect_job_stats(futures)
        derived = derive.job_stats_from_events(
            executor.trace_events(futures[0].callset_id)
        )
        assert derived == legacy  # dataclass equality: every field, exact

    def test_billing_matches_meter(self, job):
        env, executor, _futures = job
        meter = env.platform.billing
        totals = derive.billing_totals_from_events(executor.trace_events())
        assert totals["activations"] == meter.activations
        assert totals["gb_seconds"] == pytest.approx(
            meter.total_gb_seconds(), rel=1e-12
        )
        assert totals["cost"] == pytest.approx(meter.total_cost(), rel=1e-12)
        for action, gb_s in meter.by_action().items():
            assert totals["by_action"][action] == pytest.approx(gb_s, rel=1e-12)

    def test_timeline_svg_matches_legacy_plot(self, job):
        _env, executor, futures = job
        legacy_svg = executor.plot(futures)
        intervals = derive.execution_intervals(
            executor.trace_events(futures[0].callset_id)
        )
        trace_svg = render_execution_timeline(
            intervals, title=f"Executor {executor.executor_id}"
        )
        assert trace_svg == legacy_svg

    def test_trace_covers_every_layer_in_the_call_path(self, job):
        _env, executor, _futures = job
        layers = {event.layer for event in executor.trace_events()}
        assert {"client", "gateway", "controller", "container", "worker", "cos"} <= layers


class TestPersistence:
    def test_persist_trace_round_trips_through_cos(self):
        env = _traced_env()

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x + 1, [1, 2, 3])
            executor.get_result(futures)
            keys = executor.persist_trace()
            assert keys == [
                executor._storage.trace_key(executor.executor_id, futures[0].callset_id)
            ]
            stored = executor._storage.get_trace(
                executor.executor_id, futures[0].callset_id
            )
            assert stored == executor.trace_jsonl(futures[0].callset_id)
            assert stored.endswith("\n")

        env.run(main)


class TestDisabledByDefault:
    def test_no_events_without_opt_in(self):
        env = CloudEnvironment.create(seed=7)  # trace not requested

        def main():
            executor = pw.ibm_cf_executor()
            executor.get_result(executor.map(lambda x: x, [1, 2, 3]))
            return executor.trace_events()

        assert env.run(main) == []
        assert len(env.tracer) == 0
