"""CPU-contention modelling and end-to-end multi-tenant auth."""

from __future__ import annotations

import pytest

import repro as pw
from repro.core.environment import CloudEnvironment
from repro.faas import SystemLimits
from repro.faas.iam import AuthenticationError


class TestComputeContention:
    def test_compute_equals_sleep_when_contention_off(self, cloud):
        env = cloud()

        def main():
            executor = pw.ibm_cf_executor()

            def task(_):
                pw.compute(30)
                return pw.now()

            futures = executor.map(task, [0])
            executor.get_result(futures)
            stats = pw.collect_job_stats(futures)
            return stats.max_duration

        assert env.run(main) == pytest.approx(30.0, abs=0.1)

    def test_compute_outside_kernel_falls_back(self):
        import time

        t0 = time.monotonic()
        pw.compute(0.01)
        assert time.monotonic() - t0 < 1.0

    def test_contention_slows_functions_on_loaded_cluster(self):
        """With contention on, a packed cluster inflates compute times —
        §6.2's 'some functions ran fast while others slow'."""

        def run(n_functions, coeff):
            limits = SystemLimits(
                invoker_count=2, invoker_memory_mb=51_200
            )  # small cluster: 2 x 200 containers
            env = CloudEnvironment.create(limits=limits, seed=13)
            env.platform.contention_coeff = coeff

            def main():
                executor = pw.ibm_cf_executor(invoker_mode="massive")

                def task(_):
                    pw.compute(60)

                futures = executor.map(task, [0] * n_functions)
                executor.get_result(futures)
                stats = pw.collect_job_stats(futures)
                return stats.mean_duration, stats.max_duration

            return env.run(main)

        mean_off, _max_off = run(100, coeff=0.0)
        mean_on, max_on = run(100, coeff=0.5)
        assert mean_off == pytest.approx(60.0, abs=0.5)
        assert mean_on > 61.0  # loaded nodes inflate compute
        assert max_on > mean_on  # and unevenly (variability)

    def test_contention_proportional_to_load(self):
        """A lone function on an idle cluster is barely affected."""
        env = CloudEnvironment.create(seed=14)
        env.platform.contention_coeff = 0.5

        def main():
            executor = pw.ibm_cf_executor()

            def task(_):
                pw.compute(60)

            futures = executor.map(task, [0])
            executor.get_result(futures)
            return pw.collect_job_stats(futures).max_duration

        assert env.run(main) == pytest.approx(60.0, rel=0.01)


class TestMultiTenantPyWren:
    def test_executor_with_credentials_on_locked_platform(self, cloud):
        env = cloud()
        env.platform.require_auth = True
        env.credentials = env.platform.iam.create_api_key(env.config.namespace)

        def main():
            executor = pw.ibm_cf_executor()
            return executor.get_result(executor.map(lambda x: x + 1, [1, 2]))

        assert env.run(main) == [2, 3]

    def test_executor_without_credentials_rejected(self, cloud):
        env = cloud()
        env.platform.require_auth = True

        def main():
            executor = pw.ibm_cf_executor()
            with pytest.raises(AuthenticationError):
                executor.map(lambda x: x, [1])
            return True

        assert env.run(main)

    def test_massive_spawning_works_under_auth(self, cloud):
        """Remote invoker functions act with the platform's own identity."""
        env = cloud()
        env.platform.require_auth = True
        env.credentials = env.platform.iam.create_api_key(env.config.namespace)

        def main():
            executor = pw.ibm_cf_executor(invoker_mode="massive")
            return executor.get_result(executor.map(lambda x: x * 3, [1, 2, 3]))

        assert env.run(main) == [3, 6, 9]

    def test_nested_executors_work_under_auth(self, cloud):
        env = cloud()
        env.platform.require_auth = True
        env.credentials = env.platform.iam.create_api_key(env.config.namespace)

        def main():
            def fan_out(_):
                executor = pw.ibm_cf_executor()
                return executor.map(lambda x: x + 10, [1, 2])

            executor = pw.ibm_cf_executor()
            executor.call_async(fan_out, None)
            return executor.get_result()

        assert env.run(main) == [11, 12]
