"""Failure injection: network failures, throttling, timeouts, bad payloads."""

from __future__ import annotations

import pytest

import repro as pw
from repro.core.errors import FunctionError
from repro.faas import SystemLimits
from repro.net.latency import LatencyModel


class TestNetworkFailures:
    def test_lossy_wan_still_completes(self, cloud):
        """Heavy transient failure rate: client retries mask it (§5.1)."""
        env = cloud()
        env.client_latency = LatencyModel(
            rtt=0.2, jitter=0.2, failure_prob=0.25, name="flaky-wan"
        )

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x * 2, list(range(20)))
            return executor.get_result(futures)

        assert env.run(main) == [x * 2 for x in range(20)]

    def test_failures_increase_invocation_time(self, cloud):
        """'a higher latency also turns into more invocation failures,
        which further increase the total invocation time'."""

        def run(failure_prob, seed):
            env = cloud(seed=seed)
            env.client_latency = LatencyModel(
                rtt=0.2, jitter=0.0, failure_prob=failure_prob, name="x"
            )

            def main():
                executor = pw.ibm_cf_executor()
                t0 = pw.now()
                futures = executor.map(lambda x: x, list(range(50)))
                executor.wait(futures)
                runners = [
                    r
                    for r in env.platform.activations()
                    if r.action_name.startswith("pywren_runner")
                ]
                return max(r.start_time for r in runners) - t0

            return env.run(main)

        clean = run(0.0, seed=21)
        lossy = run(0.3, seed=21)
        assert lossy > clean


class TestUserCodeFailures:
    def test_every_call_failing(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def bad(x):
                raise RuntimeError(f"call {x}")

            futures = executor.map(bad, [1, 2, 3])
            executor.wait(futures)  # wait works even when all fail
            errors = []
            for future in futures:
                with pytest.raises(FunctionError):
                    future.result()
                errors.append(future.state)
            return errors

        assert env.run(main) == ["error", "error", "error"]

    def test_unserializable_result_reported_as_error(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def returns_lock(_):
                import threading

                return threading.Lock()

            future = executor.call_async(returns_lock, None)
            with pytest.raises(FunctionError, match="not serializable"):
                future.result()
            return True

        assert env.run(main)

    def test_unserializable_function_fails_fast_on_client(self, env):
        from repro.core.serializer import SerializationError

        def main():
            executor = pw.ibm_cf_executor()
            lock = __import__("threading").Lock()

            def closure_over_lock(_):
                return lock

            with pytest.raises(SerializationError):
                executor.call_async(closure_over_lock, None)
            return True

        assert env.run(main)

    def test_reducer_failure_propagates(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def bad_reduce(results):
                raise ValueError("reduce failed")

            reducer = executor.map_reduce(lambda x: x, [1, 2], bad_reduce)
            with pytest.raises(FunctionError):
                reducer.result()
            return True

        assert env.run(main)


class TestPlatformPressure:
    def test_timeout_limits_enforced(self, cloud):
        env = cloud(limits=SystemLimits(max_exec_seconds=30.0))

        def main():
            executor = pw.ibm_cf_executor()

            def endless(_):
                pw.sleep(500)
                return "finished"

            future = executor.call_async(endless, None)
            env.platform.wait_activation(
                env.platform.activations()[-1].activation_id
            )
            records = [
                r
                for r in env.platform.activations()
                if r.action_name.startswith("pywren_runner")
            ]
            return records[0].status

        assert env.run(main) == "timeout"

    def test_more_functions_than_concurrency_limit(self, cloud):
        """Invocations above the 429 limit retry and eventually all run."""
        env = cloud(limits=SystemLimits(max_concurrent=10))

        def main():
            executor = pw.ibm_cf_executor()

            def briefly(x):
                pw.sleep(2)
                return x

            futures = executor.map(briefly, list(range(30)))
            results = executor.get_result(futures)
            return results, env.platform.peak_active, env.platform.throttled_total

        results, peak, throttled = env.run(main)
        assert results == list(range(30))
        assert peak <= 10
        assert throttled > 0

    def test_cluster_smaller_than_job(self, cloud):
        """Fewer container slots than calls: queueing, not failure."""
        env = cloud(
            limits=SystemLimits(
                max_concurrent=100, invoker_count=1, invoker_memory_mb=1024
            )
        )

        def main():
            executor = pw.ibm_cf_executor()

            def briefly(x):
                pw.sleep(5)
                return x

            futures = executor.map(briefly, list(range(12)))
            return executor.get_result(futures)

        assert env.run(main) == list(range(12))
