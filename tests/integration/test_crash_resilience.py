"""Container-crash injection and client-side recovery."""

from __future__ import annotations

import pytest

import repro as pw
from repro.core.errors import ResultTimeoutError
from repro.core.environment import CloudEnvironment


class TestCrashInjection:
    def test_crashed_activations_recorded_as_infrastructure_errors(self):
        env = CloudEnvironment.create(seed=5, crash_prob=0.5)

        def main():
            executor = pw.ibm_cf_executor()
            executor.map(lambda x: x, list(range(30)))
            try:
                executor.wait(timeout=60)
            except ResultTimeoutError:
                pass
            records = [
                r
                for r in env.platform.activations()
                if r.action_name.startswith("pywren_runner")
            ]
            crashed = [r for r in records if r.error and "crashed" in r.error]
            return len(records), len(crashed)

        total, crashed = env.run(main)
        assert total == 30
        assert 5 <= crashed <= 25  # ~50% +/- noise

    def test_crashed_calls_write_no_status(self):
        env = CloudEnvironment.create(seed=6, crash_prob=1.0)

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x, [1, 2])
            with pytest.raises(ResultTimeoutError):
                executor.wait(futures, timeout=30)
            return [f.done() for f in futures]

        assert env.run(main) == [False, False]

    def test_invalid_crash_prob(self):
        with pytest.raises(ValueError):
            CloudEnvironment.create(crash_prob=1.5)


class TestRetryMissing:
    def test_recovery_loop_completes_under_crashes(self):
        """wait-with-timeout + retry_missing drains a lossy platform."""
        env = CloudEnvironment.create(seed=7, crash_prob=0.3)

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x * 2, list(range(40)))
            for _round in range(12):
                try:
                    done, not_done = executor.wait(futures, timeout=30)
                except ResultTimeoutError:
                    not_done = [f for f in futures if not f.done()]
                if not not_done:
                    break
                executor.retry_missing(futures)
            return executor.get_result(futures)

        assert env.run(main) == [x * 2 for x in range(40)]

    def test_retry_missing_noop_when_all_done(self):
        env = CloudEnvironment.create(seed=8)

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x, [1, 2])
            executor.wait(futures)
            return executor.retry_missing(futures)

        assert env.run(main) == []

    def test_duplicate_execution_is_harmless(self):
        """Speculative re-invocation of live calls converges to one result."""
        env = CloudEnvironment.create(seed=9)

        def main():
            executor = pw.ibm_cf_executor()

            def slow(x):
                pw.sleep(30)
                return x + 1

            futures = executor.map(slow, [41])
            # retry before the first attempt finished: both attempts run
            executor.retry_missing(futures)
            return executor.get_result(futures)

        assert env.run(main) == [42]
