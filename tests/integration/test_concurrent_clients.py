"""Stress: concurrent executors and client tasks sharing one cloud."""

from __future__ import annotations

import pytest

import repro as pw
from repro.vtime import gather


class TestConcurrentExecutors:
    def test_parallel_client_tasks_each_with_own_executor(self, env):
        """Five concurrent 'users' (kernel tasks) run disjoint jobs."""

        def main():
            def user(uid):
                executor = pw.ibm_cf_executor()
                futures = executor.map(
                    lambda x: x * 100, [uid * 10 + i for i in range(8)]
                )
                return executor.get_result(futures)

            tasks = [
                env.kernel.spawn(user, uid, name=f"user-{uid}")
                for uid in range(5)
            ]
            return gather(tasks)

        results = env.run(main)
        for uid, values in enumerate(results):
            assert values == [(uid * 10 + i) * 100 for i in range(8)]

    def test_interleaved_jobs_one_executor(self, env):
        """One executor, three jobs submitted before any result collected."""

        def main():
            executor = pw.ibm_cf_executor()
            a = executor.map(lambda x: ("a", x), [1, 2])
            b = executor.map(lambda x: ("b", x), [3])
            c = executor.call_async(lambda x: ("c", x), 4)
            return (
                executor.get_result(a),
                executor.get_result(b),
                executor.get_result(c),
            )

        a, b, c = env.run(main)
        assert a == [("a", 1), ("a", 2)]
        assert b == [("b", 3)]
        assert c == ("c", 4)

    def test_shared_platform_counters_consistent(self, env):
        def main():
            def user(_uid):
                executor = pw.ibm_cf_executor()
                executor.get_result(executor.map(lambda x: x, list(range(10))))

            gather([env.kernel.spawn(user, uid) for uid in range(4)])
            records = [
                r
                for r in env.platform.activations()
                if r.action_name.startswith("pywren_runner")
            ]
            return len(records), env.platform.active_count

        total, active = env.run(main)
        assert total == 40
        assert active == 0  # everything drained

    def test_push_and_polling_executors_coexist(self, env):
        def main():
            poll_exec = pw.ibm_cf_executor()
            push_exec = pw.ibm_cf_executor(monitoring="mq_push")
            pf = poll_exec.map(lambda x: x + 1, [1, 2])
            qf = push_exec.map(lambda x: x - 1, [1, 2])
            return poll_exec.get_result(pf), push_exec.get_result(qf)

        assert env.run(main) == ([2, 3], [0, 1])
