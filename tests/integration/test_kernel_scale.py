"""Scale regression: one kernel runs a 10,000-function map (nightly).

Marked ``slow`` — excluded from the default run by ``-m "not slow"`` in the
pytest addopts; CI runs it on the nightly schedule and locally it's
``pytest -m slow``.  The assertions pin the hybrid scheduler's contract at
scale: the job completes, the OS-thread count stays bounded by the kernel's
pool (model tasks hold no thread while blocked), and the trace-derived
concurrency timeline actually reaches 10k simultaneous executions.
"""

from __future__ import annotations

import threading

import pytest

import repro as pw
from repro.analytics.timeline import concurrency_timeline
from repro.config import InvokerMode
from repro.core import cost
from repro.core.environment import CloudEnvironment
from repro.faas.limits import SystemLimits
from repro.net.latency import LatencyModel
from repro.trace import derive

pytestmark = pytest.mark.slow

N_FUNCTIONS = 10_000


def _scale_task(_: object):
    """The Fig. 3-style ~60 s function as a threadless steps generator."""
    from repro.vtime.kernel import vsleep

    yield vsleep(cost.FIG3_TASK_SECONDS)
    return 1


class _ThreadPeak:
    """Samples the process's OS-thread count from a plain thread."""

    def __init__(self) -> None:
        self.peak = threading.active_count()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            self.peak = max(self.peak, threading.active_count())
            self._stop.wait(0.02)

    def __enter__(self) -> "_ThreadPeak":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()
        self.peak = max(self.peak, threading.active_count())


def test_ten_thousand_function_map_on_one_kernel():
    invoker_memory_mb = 102_400
    per_node = invoker_memory_mb // 256
    limits = SystemLimits(
        max_concurrent=N_FUNCTIONS + 64,
        invoker_count=(N_FUNCTIONS + per_node - 1) // per_node + 2,
        invoker_memory_mb=invoker_memory_mb,
    )
    env = CloudEnvironment.create(
        client_latency=LatencyModel.wan(), limits=limits, seed=42, trace=True
    )

    def main():
        executor = pw.ibm_cf_executor(invoker_mode=InvokerMode.MASSIVE)
        futures = executor.map(_scale_task, [0] * N_FUNCTIONS)
        results = executor.get_result(futures)
        assert results == [1] * N_FUNCTIONS
        return executor.trace_events(futures[0].callset_id)

    with _ThreadPeak() as watcher:
        events = env.run(main)

    # the kernel never approached thread-per-function: bounded by the pool
    pool = env.kernel.thread_stats()["pool_size"]
    assert watcher.peak < 2 * pool, (
        f"peak {watcher.peak} OS threads vs pool {pool}"
    )

    # the trace stream proves all 10k really executed concurrently
    intervals = derive.execution_intervals(events)
    assert len(intervals) == N_FUNCTIONS
    timeline = concurrency_timeline(intervals, resolution=1.0)
    assert max(level for _t, level in timeline) >= N_FUNCTIONS
