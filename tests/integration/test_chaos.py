"""Integration tests for the deterministic fault-injection plane.

Covers the tentpole's acceptance criteria: the ``none`` profile is
byte-identical to running without chaos, a (profile, seed) pair reproduces
the exact same fault timeline, and the executor recovers end-to-end —
storms included — or degrades into partial results plus a
:class:`~repro.core.futures.FailureReport`.
"""

from __future__ import annotations

import pytest

import repro as pw
from repro.chaos import ChaosPlane, ChaosProfile, build_plane
from repro.core.futures import FailureReport


def square(x):
    return x * x


def run_job(chaos=None, n=40, seed=123, **config_kwargs):
    """One map job; returns (results, final virtual time, env)."""
    from repro.core.environment import CloudEnvironment

    env = CloudEnvironment.create(seed=seed, chaos=chaos)
    if config_kwargs:
        env.config = env.config.with_overrides(**config_kwargs)

    def main():
        executor = pw.ibm_cf_executor()
        executor.map(square, list(range(n)))
        return executor.get_result()

    results = env.run(main)
    return results, env.now(), env


class TestProfileValidation:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            ChaosProfile("hurricane")

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos knobs"):
            ChaosProfile("storm", seed=1, crash_probability=0.5)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            ChaosProfile("none", crash_prob=1.5)

    def test_none_profile_is_inert(self):
        assert not ChaosProfile("none").enabled
        assert build_plane("none") is None
        assert build_plane(ChaosProfile("none", seed=9)) is None
        assert build_plane(None) is None

    def test_enabled_profiles_build_planes(self):
        for name in ("flaky-cos", "crashy-workers", "storm"):
            plane = build_plane(ChaosProfile(name, seed=1))
            assert isinstance(plane, ChaosPlane)


class TestNoneProfileByteIdentical:
    def test_none_profile_matches_chaos_free_run(self):
        base_results, base_t, base_env = run_job(chaos=None)
        none_results, none_t, none_env = run_job(chaos="none")
        assert none_results == base_results
        assert none_t == base_t  # identical virtual timeline
        assert none_env.chaos is None  # the plane was never built


class TestDeterminism:
    @pytest.mark.parametrize("name", ["flaky-cos", "crashy-workers", "storm"])
    def test_same_profile_and_seed_reproduces_timeline(self, name):
        runs = []
        for _ in range(2):
            profile = ChaosProfile(name, seed=7)
            results, t, env = run_job(chaos=profile, n=30)
            runs.append((results, t, env.chaos.timeline_key()))
        assert runs[0] == runs[1]
        # the profile actually did something (storm/flaky always fault
        # somewhere in 30 calls at these rates; tolerate quiet crashy runs)
        if name != "crashy-workers":
            assert runs[0][2]

    def test_different_seeds_differ(self):
        _, _, env_a = run_job(chaos=ChaosProfile("storm", seed=7), n=30)
        _, _, env_b = run_job(chaos=ChaosProfile("storm", seed=8), n=30)
        assert env_a.chaos.timeline_key() != env_b.chaos.timeline_key()


class TestEndToEndRecovery:
    def test_storm_map_reduce_matches_fault_free_run(self):
        """Acceptance: 200 calls under storm == the fault-free answer."""
        n = 200
        data = list(range(n))

        def run(chaos):
            from repro.core.environment import CloudEnvironment

            env = CloudEnvironment.create(seed=123, chaos=chaos)

            def main():
                executor = pw.ibm_cf_executor()
                future = executor.map_reduce(square, data, sum)
                return executor.get_result(future)

            return env.run(main), env

        clean, _ = run(None)
        stormy, env = run(ChaosProfile("storm", seed=7))
        assert stormy == clean == sum(x * x for x in data)
        # faults were actually injected and survived
        assert env.chaos.fault_counts()

    def test_lost_calls_reinvoked_within_budget(self):
        profile = ChaosProfile("crashy-workers", seed=3, crash_prob=0.3)
        from repro.core.environment import CloudEnvironment

        env = CloudEnvironment.create(seed=123, chaos=profile)

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(square, list(range(40)), retries=5)
            results = executor.get_result(futures)
            return results, futures, executor.resilience_stats()

        results, futures, stats = env.run(main)
        assert results == [x * x for x in range(40)]
        assert stats["invocation_retries"] >= 1
        for future in futures:
            # every call ran at most 1 + retries times
            assert 1 <= future.invoke_count <= 6

    def test_flaky_cos_completes_with_retries(self):
        results, _, env = run_job(chaos=ChaosProfile("flaky-cos", seed=5), n=25)
        assert results == [x * x for x in range(25)]
        counts = env.chaos.fault_counts()
        assert any(key.startswith("cos:") for key in counts)

    def test_storm_injects_throttles(self):
        _, _, env = run_job(chaos=ChaosProfile("storm", seed=11), n=60)
        counts = env.chaos.fault_counts()
        assert counts.get("throttle:429", 0) >= 1


class TestPartialResults:
    def _run_unrecoverable(self, throw_except):
        # every container dies and the retry budget is tiny: unrecoverable
        profile = ChaosProfile(
            "crashy-workers", seed=2, crash_prob=1.0, hang_prob=0.0
        )
        from repro.core.environment import CloudEnvironment

        env = CloudEnvironment.create(seed=123, chaos=profile)

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(square, [1, 2, 3], retries=1)
            value = executor.get_result(futures, throw_except=throw_except)
            # the dead-letter object must be readable in the same run: the
            # kernel shuts down when the client program returns
            stored = executor._storage.get_deadletter(
                executor.executor_id, futures[0].callset_id
            )
            return value, stored

        return env.run(main), env

    def test_partial_results_and_failure_report(self):
        ((values, report), _stored), env = self._run_unrecoverable(
            throw_except=False
        )
        assert values == [None, None, None]
        assert isinstance(report, FailureReport)
        assert len(report) == 3
        for failure in report.failures:
            assert failure.lost
            assert failure.attempts == 2  # first try + 1 retry
            assert "container" in (failure.error or "")
        assert "3 call(s) failed" in report.summary()

    def test_deadletter_persisted_in_cos(self):
        (_value, stored), _env = self._run_unrecoverable(throw_except=False)
        assert isinstance(stored, FailureReport)
        assert len(stored) == 3

    def test_throw_except_true_raises(self):
        from repro.core.errors import FunctionError

        with pytest.raises(FunctionError, match="container"):
            self._run_unrecoverable(throw_except=True)


class TestMixedOutcomes:
    def test_partial_success_keeps_good_results(self):
        """Only some calls die; survivors' results come back in order."""

        profile = ChaosProfile("crashy-workers", seed=4, crash_prob=0.5)
        from repro.core.environment import CloudEnvironment

        env = CloudEnvironment.create(seed=123, chaos=profile)

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(square, list(range(12)), retries=0)
            values, report = executor.get_result(futures, throw_except=False)
            return values, report

        values, report = env.run(main)
        assert len(values) == 12
        failed = {f.call_id for f in report.failures}
        assert 0 < len(failed) < 12  # seed chosen so both kinds occur
        for i, value in enumerate(values):
            if f"{i:05d}" in failed:
                assert value is None
            else:
                assert value == i * i


class TestStatsSurface:
    def test_job_stats_count_retries_and_failures(self):
        from repro.core.environment import CloudEnvironment
        from repro.core.stats import collect_job_stats

        profile = ChaosProfile("crashy-workers", seed=3, crash_prob=0.3)
        env = CloudEnvironment.create(seed=123, chaos=profile)

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(square, list(range(30)), retries=5)
            executor.get_result(futures)
            return collect_job_stats(futures)

        stats = env.run(main)
        assert stats.n_calls == 30
        assert stats.retries_total >= 1
        assert stats.failed_calls == 0  # everything recovered

    def test_resilience_stats_shape(self):
        from repro.core.environment import CloudEnvironment

        env = CloudEnvironment.create(
            seed=123, chaos=ChaosProfile("flaky-cos", seed=5)
        )

        def main():
            executor = pw.ibm_cf_executor()
            executor.map(square, list(range(10)))
            executor.get_result()
            return executor.resilience_stats()

        stats = env.run(main)
        assert set(stats) == {
            "invocation_retries",
            "cos_request_retries",
            "invoke_network_retries",
            "throttle_retries",
            "faults_injected",
        }
