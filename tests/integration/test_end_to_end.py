"""End-to-end integration tests across all subsystems."""

from __future__ import annotations

import pytest

import repro as pw
from repro.analytics.tone import analyze_csv_reviews
from repro.datasets import airbnb, words


class TestFig1Flow:
    """The exact execution flow of the paper's Fig. 1."""

    def test_quickstart(self, env):
        def my_function(x):
            return x + 7

        def main():
            executor = pw.ibm_cf_executor()
            executor.map(my_function, [3, 6, 9])
            return executor.get_result()

        assert env.run(main) == [10, 13, 16]

    def test_code_and_data_travel_through_cos(self, env):
        """Fig. 1 step 1: 'serializes them and finally stores them into
        IBM COS' — internal keys must exist after submission."""

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x, [1, 2])
            keys = env.storage.list_keys(
                executor.config.storage_bucket,
                f"{executor.config.storage_prefix}/{executor.executor_id}/",
            )
            executor.get_result(futures)
            done_keys = env.storage.list_keys(
                executor.config.storage_bucket,
                f"{executor.config.storage_prefix}/{executor.executor_id}/",
            )
            return keys, done_keys

        keys, done_keys = env.run(main)
        assert any("/funcs/" in k and k.endswith(".pickle") for k in keys)
        assert any(k.endswith("aggdata.pickle") for k in keys)
        assert sum(k.endswith("status.pickle") for k in done_keys) == 2
        assert sum(k.endswith("result.pickle") for k in done_keys) == 2

    def test_functions_really_execute_in_containers(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x**2, [2, 3])
            executor.get_result(futures)
            runners = [
                r
                for r in env.platform.activations()
                if r.action_name.startswith("pywren_runner")
            ]
            return [(r.status, r.container_id is not None) for r in runners]

        assert env.run(main) == [("success", True), ("success", True)]


class TestAirbnbMini:
    """The §6.4 use case at test scale: tone maps for 33 cities."""

    def test_full_pipeline(self, cloud):
        env = cloud()
        airbnb.load_dataset(env.storage, total_size=330_000)

        def tone_map(partition):
            stats, points = analyze_csv_reviews(partition.read())
            return {"key": partition.key, "stats": stats, "points": points[:50]}

        def tone_reduce(results):
            from repro.analytics.geoplot import render_city_map
            from repro.analytics.tone import ToneStats

            merged = ToneStats()
            points = []
            for part in results:
                merged.merge(part["stats"])
                points.extend(part["points"])
            svg = render_city_map(results[0]["key"], points)
            return {
                "key": results[0]["key"],
                "comments": merged.comments,
                "svg_ok": svg.startswith("<svg"),
            }

        def main():
            executor = pw.ibm_cf_executor(invoker_mode="massive")
            reducers = executor.map_reduce(
                tone_map,
                f"cos://{airbnb.DEFAULT_BUCKET}",
                tone_reduce,
                chunk_size=4096,
                reducer_one_per_object=True,
            )
            return executor.get_result(reducers)

        summaries = env.run(main)
        assert len(summaries) == 33
        assert all(s["svg_ok"] for s in summaries)
        assert all(s["comments"] > 0 for s in summaries)
        keys = {s["key"] for s in summaries}
        assert len(keys) == 33


class TestWordcount:
    def test_wordcount_totals(self, cloud):
        env = cloud()
        words.load_corpus(env.storage, n_docs=6, words_per_doc=100)

        def count_words(partition):
            return len(partition.read().split())

        def main():
            executor = pw.ibm_cf_executor()
            reducer = executor.map_reduce(count_words, "cos://corpus", sum)
            return executor.get_result(reducer)

        assert env.run(main) == 600


class TestMultiExecutor:
    def test_different_runtimes_in_same_client_code(self, cloud):
        """§4.1: 'different runtimes in different executor instances in the
        same client's code'."""
        env = cloud()
        env.registry.build_custom_runtime(
            "team/scipy:1", owner="t", extra_packages=["extra-solver"]
        )

        def main():
            default_exec = pw.ibm_cf_executor()
            custom_exec = pw.ibm_cf_executor(runtime="team/scipy:1")
            a = default_exec.call_async(lambda x: x + 1, 1)
            b = custom_exec.call_async(lambda x: x + 2, 1)
            return a.result(), b.result()

        assert env.run(main) == (2, 3)

    def test_interleaved_jobs_do_not_cross_talk(self, env):
        def main():
            ex1 = pw.ibm_cf_executor()
            ex2 = pw.ibm_cf_executor()
            f1 = ex1.map(lambda x: ("one", x), [1, 2])
            f2 = ex2.map(lambda x: ("two", x), [3, 4])
            return ex1.get_result(f1), ex2.get_result(f2)

        r1, r2 = env.run(main)
        assert r1 == [("one", 1), ("one", 2)]
        assert r2 == [("two", 3), ("two", 4)]


class TestScale:
    def test_500_functions_complete(self, cloud):
        from repro.faas import SystemLimits

        env = cloud(limits=SystemLimits(max_concurrent=600))

        def main():
            executor = pw.ibm_cf_executor(invoker_mode="massive")
            futures = executor.map(lambda x: x % 7, list(range(500)))
            results = executor.get_result(futures)
            return results, env.platform.peak_active

        results, peak = env.run(main)
        assert results == [x % 7 for x in range(500)]
        assert peak <= 600
