"""DAG engine under the fault-injection plane (slow, nightly tier).

The barrier-free scheduler must inherit the executor's whole recovery
story: lost activations are re-invoked within the retry budget, flaky COS
is absorbed by the storage client's retries, and a (chaos seed, env seed)
pair reproduces the exact same fault timeline and answer.
"""

from __future__ import annotations

import pytest

import repro as pw
from repro.chaos import ChaosProfile
from repro.core.environment import CloudEnvironment
from repro.dag import DagBuilder, DagScheduler
from repro.sort.mergesort import serverless_mergesort

pytestmark = pytest.mark.slow


def _word_pairs(text):
    return [(word, 1) for word in text.split()]


def _count(key, values):
    del key
    return sum(values)


def _mergesort_under(chaos, seed=123, retries=None):
    env = CloudEnvironment.create(seed=seed, chaos=chaos)
    array = [37, 5, 99, 1, 62, 8, 44, 13, 70, 2, 55, 91, 24, 6, 83, 17]

    def main():
        executor = pw.ibm_cf_executor()
        future = serverless_mergesort(array, depth=2, executor=executor)
        if retries is not None:
            # widen the lost-call budget on every node of the DAG
            for f in executor.futures:
                f.max_retries = retries
        return executor.get_result(future), executor.resilience_stats()

    (result, stats), horizon = env.run(main), env.now()
    return result, stats, horizon, env, sorted(array)


class TestRecovery:
    def test_mergesort_survives_storm(self):
        result, _stats, _t, env, expected = _mergesort_under(
            ChaosProfile("storm", seed=7)
        )
        assert result == expected
        assert env.chaos.fault_counts()  # the storm actually hit something

    def test_mergesort_survives_crashy_workers(self):
        result, stats, _t, env, expected = _mergesort_under(
            ChaosProfile("crashy-workers", seed=3, crash_prob=0.25)
        )
        assert result == expected
        if any(k.startswith("worker:") for k in env.chaos.fault_counts()):
            assert stats["invocation_retries"] >= 1

    def test_shuffle_dag_survives_flaky_cos(self):
        env = CloudEnvironment.create(
            seed=123, chaos=ChaosProfile("flaky-cos", seed=5)
        )
        docs = ["a b a", "b c", "a c c", "b b"]

        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce_shuffle(
                _word_pairs, docs, _count, n_reducers=3
            )
            merged = {}
            for part in executor.get_result(reducers):
                merged.update(part)
            return merged

        assert env.run(main) == {"a": 3, "b": 4, "c": 3}
        assert any(
            key.startswith("cos:") for key in env.chaos.fault_counts()
        )


class TestChaosDeterminism:
    def test_same_seeds_reproduce_run(self):
        runs = []
        for _ in range(2):
            result, stats, horizon, env, expected = _mergesort_under(
                ChaosProfile("storm", seed=11)
            )
            assert result == expected
            runs.append((result, stats, horizon, env.chaos.timeline_key()))
        assert runs[0] == runs[1]

    def test_node_retries_recover_under_chaos(self):
        """App-level node retries compose with infrastructure chaos."""
        env = CloudEnvironment.create(
            seed=123, chaos=ChaosProfile("flaky-cos", seed=5)
        )

        def flaky(x):
            from repro.core import context as ambient

            environment = ambient.require_context().environment
            bucket = environment.config.storage_bucket
            if not environment.storage.object_exists(bucket, "dag-chaos-marker"):
                environment.storage.put_object(bucket, "dag-chaos-marker", b"1")
                raise RuntimeError("transient app failure")
            return x * 10

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            node = builder.call(flaky, 7)
            run = DagScheduler(executor, node_retries=2).submit(builder.build())
            run.join()
            return run.future(node).result(), node.error_attempts

        value, attempts = env.run(main)
        assert value == 70
        assert attempts == 1
