"""Property test: the serverless shuffle agrees with local computation."""

from __future__ import annotations

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro as pw
from repro.core.environment import CloudEnvironment
from repro.core.shuffle import merge_shuffle_results

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon"]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=st.lists(
        st.lists(st.sampled_from(WORDS), min_size=0, max_size=12),
        min_size=1,
        max_size=8,
    ),
    n_reducers=st.integers(min_value=1, max_value=5),
)
def test_shuffle_wordcount_matches_counter(docs, n_reducers):
    """For any corpus and reducer count, the distributed count equals the
    local Counter — the gold-standard oracle for the whole data path."""
    env = CloudEnvironment.create(seed=len(docs) * 10 + n_reducers)
    documents = [" ".join(doc) for doc in docs]

    def emit(document):
        return [(word, 1) for word in document.split()]

    def count(_key, values):
        return sum(values)

    def main():
        executor = pw.ibm_cf_executor()
        reducers = executor.map_reduce_shuffle(
            emit, documents, count, n_reducers=n_reducers
        )
        return merge_shuffle_results(executor.get_result(reducers))

    expected = dict(Counter(w for doc in docs for w in doc))
    assert env.run(main) == expected
