"""Reproducibility: same seed, same virtual-time results."""

from __future__ import annotations

import pytest

import repro as pw
from repro.bench.fig2_spawning import run_spawning
from repro.config import InvokerMode
from repro.core.environment import CloudEnvironment


class TestSeededDeterminism:
    def test_fig2_run_is_reproducible(self):
        a = run_spawning(InvokerMode.MASSIVE, n_functions=100, task_seconds=5, seed=99)
        b = run_spawning(InvokerMode.MASSIVE, n_functions=100, task_seconds=5, seed=99)
        assert a.invocation_phase_s == b.invocation_phase_s
        assert a.total_s == b.total_s
        assert a.concurrency == b.concurrency

    def test_different_seeds_differ(self):
        a = run_spawning(InvokerMode.LOCAL, n_functions=60, task_seconds=5, seed=1)
        b = run_spawning(InvokerMode.LOCAL, n_functions=60, task_seconds=5, seed=2)
        assert a.invocation_phase_s != b.invocation_phase_s

    def test_end_to_end_mapreduce_deterministic(self):
        def run(seed):
            env = CloudEnvironment.create(seed=seed)
            env.storage.create_bucket("d")
            env.storage.put_object("d", "obj", b"w " * 500)

            def count(partition):
                return len(partition.read().split())

            def main():
                executor = pw.ibm_cf_executor()
                reducer = executor.map_reduce(count, "cos://d", sum, chunk_size=100)
                value = executor.get_result(reducer)
                return value, pw.now()

            return env.run(main)

        assert run(5) == run(5)
        value_a, time_a = run(5)
        value_b, time_b = run(6)
        assert value_a == value_b  # answers never depend on the seed
        assert time_a != time_b  # timings do


class TestThrottledMassiveSpawning:
    def test_massive_mode_respects_tight_limit(self, cloud):
        """Remote invokers also hit 429s and retry in-cloud."""
        from repro.faas import SystemLimits

        env = cloud(limits=SystemLimits(max_concurrent=8))

        def main():
            executor = pw.ibm_cf_executor(
                invoker_mode=InvokerMode.MASSIVE, massive_group_size=5
            )

            def briefly(x):
                pw.sleep(2)
                return x

            futures = executor.map(briefly, list(range(30)))
            results = executor.get_result(futures)
            return results, env.platform.peak_active, env.platform.throttled_total

        results, peak, throttled = env.run(main)
        assert results == list(range(30))
        assert peak <= 8
        assert throttled > 0
