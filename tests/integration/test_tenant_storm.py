"""Multi-tenant region under the tenant-storm chaos profile (slow tier).

The fair dispatcher and per-tenant accounting must hold up while the
region has a bad day: synthetic 429 storms, container crashes and hangs,
inflated WAN latency.  Every tenant's job still completes, every fault
is stamped with the tenant it hit, and a (seed, chaos seed) pair
reproduces the identical fault timeline.
"""

from __future__ import annotations

import pytest

import repro as pw
from repro.chaos import ChaosProfile
from repro.config import TenantConfig
from repro.core.cost import tenant_billing_rollup

pytestmark = pytest.mark.slow

TENANTS = ("tenant-a", "tenant-b", "tenant-c")
N_TASKS = 12


def _task(x):
    pw.sleep(2)
    return x


def _storm_run(seed=11, chaos_seed=5):
    env = pw.CloudEnvironment.create(
        seed=seed,
        chaos=ChaosProfile("tenant-storm", seed=chaos_seed),
        tenants=[
            TenantConfig("tenant-a", weight=2.0),
            TenantConfig("tenant-b"),
            TenantConfig("tenant-c"),
        ],
    )

    def main():
        executors = {name: env.executor(namespace=name) for name in TENANTS}
        futures = {
            name: executors[name].map(_task, list(range(N_TASKS)))
            for name in TENANTS
        }
        return {
            name: executors[name].get_result(futures[name])
            for name in TENANTS
        }

    results = env.run(main)
    return env, results


class TestTenantStorm:
    def test_every_tenant_completes_through_the_storm(self):
        env, results = _storm_run()
        assert results == {name: list(range(N_TASKS)) for name in TENANTS}
        stats = env.platform.tenants.stats()
        for name in TENANTS:
            assert stats[name]["completed"] >= N_TASKS
            assert stats[name]["inflight"] == 0
            assert stats[name]["inflight_mb"] == 0
        # the storm actually hit something
        assert env.chaos.fault_counts()

    def test_faults_are_stamped_per_tenant(self):
        env, _results = _storm_run()
        by_tenant = env.chaos.fault_counts_by_tenant()
        # synthetic 429s happen at accept time, where the tenant is known:
        # every throttle fault must carry its tenant, none may be blank
        throttled = {
            tenant: counts
            for tenant, counts in by_tenant.items()
            if any(label.startswith("throttle:") for label in counts)
        }
        assert throttled, "tenant-storm produced no synthetic throttles"
        assert "" not in throttled, "a throttle fault lost its tenant stamp"
        assert set(throttled) <= set(TENANTS)
        # billing still rolls up exactly despite retries and crashes
        rollup = tenant_billing_rollup(env.platform.billing)
        region = rollup.pop("__region__")
        assert sum(r["cost"] for _n, r in sorted(rollup.items())) == region["cost"]

    def test_storm_is_deterministic_per_seed_pair(self):
        env1, results1 = _storm_run(seed=11, chaos_seed=5)
        env2, results2 = _storm_run(seed=11, chaos_seed=5)
        assert results1 == results2
        assert (
            env1.chaos.fault_counts_by_tenant()
            == env2.chaos.fault_counts_by_tenant()
        )
        assert env1.now() == env2.now()
        # a different chaos seed yields a different storm
        env3, _results3 = _storm_run(seed=11, chaos_seed=6)
        assert (
            env3.chaos.fault_counts_by_tenant()
            != env1.chaos.fault_counts_by_tenant()
        )
