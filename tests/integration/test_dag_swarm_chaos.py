"""Swarm scheduling under the fault-injection plane (slow, nightly tier).

The worker-driven handoff moves the scheduling hot path into the cloud,
so its recovery story has two new holes to cover: a worker that dies
*mid-handoff* (after its own status commit, before invoking a ready
dependent) leaves the dependent orphaned — only the supervisor's
token-aware redrive can rescue it — and a client that dies mid-run must
be able to reattach to a swarm-scheduled DAG whose workers kept driving
it while the client was gone.
"""

from __future__ import annotations

import pytest

import repro as pw
from repro.chaos import ChaosProfile
from repro.core.environment import CloudEnvironment
from repro.dag import DagBuilder

pytestmark = pytest.mark.slow


def relay(x):
    pw.sleep(2)
    return x + 1


def total(values):
    return sum(values)


def _build_tree(builder):
    """Two reduce levels over four leaves, then a short chain: exercises
    both the marker fan-in path and the token-only chain path."""
    leaves = builder.map(relay, [1, 2, 3, 4])
    mid = [
        builder.reduce(total, leaves[:2]),
        builder.reduce(total, leaves[2:]),
    ]
    top = builder.reduce(total, mid)
    return top.then(relay, fusable=False)


EXPECTED = (2 + 3) + (4 + 5) + 1


class TestWorkerCrashes:
    def _run_under(self, chaos, seed=123, trace=False):
        env = CloudEnvironment.create(seed=seed, chaos=chaos, trace=trace)

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            tail = _build_tree(builder)
            run = builder.submit(
                executor, fuse=False, scheduler="swarm", retries=5
            )
            value = run.expose(tail).result()
            jsonl = executor.trace_jsonl() if trace else ""
            return value, jsonl

        (value, jsonl), horizon = env.run(main), env.now()
        return value, jsonl, horizon, env

    def test_swarm_dag_survives_crashy_workers(self):
        value, _jsonl, _t, env = self._run_under(
            ChaosProfile("crashy-workers", seed=3, crash_prob=0.35)
        )
        assert value == EXPECTED
        assert any(
            key.startswith("container:") for key in env.chaos.fault_counts()
        )

    def test_orphaned_subtree_is_redriven(self):
        """With crashes hitting worker-invoked activations, at least one
        dependency-complete node loses its handoff and must be re-driven
        by the supervisor (the ``swarm.redrive`` trace point)."""
        value, jsonl, _t, env = self._run_under(
            ChaosProfile("crashy-workers", seed=1, crash_prob=0.25),
            trace=True,
        )
        assert value == EXPECTED
        assert any(
            key.startswith("container:") for key in env.chaos.fault_counts()
        )
        assert '"swarm.redrive"' in jsonl

    def test_same_seeds_reproduce_swarm_run(self):
        runs = []
        for _ in range(2):
            value, jsonl, horizon, env = self._run_under(
                ChaosProfile("crashy-workers", seed=9, crash_prob=0.2),
                trace=True,
            )
            assert value == EXPECTED
            runs.append((value, horizon, env.chaos.timeline_key(), jsonl))
        assert runs[0] == runs[1]


class TestClientCrashResume:
    def test_client_crash_then_reattach_swarm_dag(self):
        """Kill the client mid-run; workers keep driving the swarm DAG
        while it is gone, and a fresh driver reattaches to the journal
        and collects the same answer."""
        env = CloudEnvironment.create(
            seed=123,
            events=True,
            chaos=ChaosProfile("client-crash", seed=7, client_crash_at_s=6.0),
        )

        def main():
            executor = pw.ibm_cf_executor()
            job_id = executor.executor_id
            builder = DagBuilder()
            tail = _build_tree(builder)
            run = builder.submit(executor, fuse=False, scheduler="swarm")
            future = run.expose(tail)
            try:
                # collect through the executor: its wait loop carries the
                # client-crash checkpoint (a bare future.result() polls
                # statuses directly and would never observe its own death)
                return "done", executor.get_result(future)
            except pw.ClientCrashError:
                adopter = env.executor()
                job = adopter.reattach(job_id)
                return "resumed", job.get_result()

        outcome, value = env.run(main)
        assert outcome == "resumed"  # the crash instant is mid-run
        assert value == EXPECTED
