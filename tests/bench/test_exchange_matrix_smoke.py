"""Fast smoke of the exchange-matrix benchmark harness.

The full sweep lives in ``benchmarks/bench_exchange_matrix.py`` (run via
``make bench-exchange``); here we execute one tiny cell per backend so the
default test run catches harness rot without paying sweep-scale time.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

BENCH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "bench_exchange_matrix.py"
)


def load_bench():
    spec = importlib.util.spec_from_file_location("bench_exchange_matrix", BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench():
    return load_bench()


@pytest.mark.parametrize("backend", ["cos", "cached-cos", "vm"])
def test_tiny_cell_runs_and_bills(bench, backend):
    cell, _ = bench.run_cell(backend, volume=64 * 1024, n_maps=2, n_reducers=2)
    # run_cell asserts the reduced answer internally; check the report shape
    assert cell["makespan_s"] > 0
    assert cell["partition_bytes"] == 16 * 1024
    assert cell["cos_cost_usd"] > 0
    assert cell["total_cost_usd"] >= cell["cos_cost_usd"]
    if backend == "vm":
        assert cell["vm_seconds"] > 0 and cell["vm_cost_usd"] > 0
        assert cell["tier_hits"] > 0
    else:
        assert cell["vm_cost_usd"] == 0


def test_tiny_cell_traced_runs_are_deterministic(bench):
    _, trace_a = bench.run_cell(
        "vm", volume=64 * 1024, n_maps=2, n_reducers=2, trace=True
    )
    _, trace_b = bench.run_cell(
        "vm", volume=64 * 1024, n_maps=2, n_reducers=2, trace=True
    )
    assert trace_a and trace_a == trace_b


def test_reducer_keys_cover_every_partition(bench):
    from repro.core.shuffle import stable_key_hash

    keys = bench.reducer_keys(4)
    assert [stable_key_hash(k) % 4 for k in keys] == [0, 1, 2, 3]
