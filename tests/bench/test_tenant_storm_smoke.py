"""Fast smoke of the tenant-storm bench harness (tiny scale).

The real run (``make bench-tenant-storm``) is nightly-tier; here we
verify the harness machinery — mode runner, per-tenant metrics, report
shape — on a workload small enough for the unit suite.
"""

from __future__ import annotations

import pytest

from benchmarks import bench_tenant_storm as bench
from repro.chaos import ChaosProfile

TINY = dict(n_tenants=6, tasks_per_tenant=2, task_s=5.0, seed=99)


class TestTenantStormHarness:
    @pytest.mark.parametrize("policy", ["fifo", "drr"])
    def test_mode_runs_and_reports(self, policy):
        report = bench.run_mode(policy, **TINY)
        assert report["policy"] == policy
        assert report["tenants"] == TINY["n_tenants"]
        assert 0.0 < report["jain_fairness_index"] <= 1.0
        assert report["throughput_tasks_per_s"] > 0
        assert report["billing"]["tenants_billed"] == TINY["n_tenants"]
        spread = report["makespan_s"]
        assert spread["min"] <= spread["p50"] <= spread["p95"] <= spread["max"]

    def test_storm_mode_records_faults(self):
        report = bench.run_mode(
            "drr",
            chaos=ChaosProfile("tenant-storm", seed=3, crash_prob=0.0, hang_prob=0.0),
            **TINY,
        )
        assert report["chaos"] == "tenant-storm"
        assert "faults" in report

    def test_same_seed_modes_are_reproducible(self):
        first = bench.run_mode("drr", **TINY)
        second = bench.run_mode("drr", **TINY)
        assert first == second
