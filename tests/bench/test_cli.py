"""Tests for the `python -m repro.bench` command-line interface."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_fig2_small(self, capsys):
        assert main(["fig2", "--n", "20"]) == 0
        out = capsys.readouterr().out
        assert "invocation of 1,000" in out or "Fig. 2" in out
        assert "massive" in out

    def test_fig4_quick(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "mergesort" in out
        assert "d=0" in out

    def test_table3_single_chunk(self, capsys):
        assert main(["table3", "--chunks", "64"]) == 0
        out = capsys.readouterr().out
        assert "No / Sequential" in out
        assert "64MB" in out

    def test_fig5_writes_artifact(self, capsys, tmp_path):
        out = tmp_path / "ny.svg"
        assert main(["fig5", "--out", str(out)]) == 0
        assert "tone map of new-york" in capsys.readouterr().out
        assert out.read_text().startswith("<svg")

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
