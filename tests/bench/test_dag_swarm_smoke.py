"""Fast smoke of the swarm-vs-centralized benchmark harness.

The full sweep lives in ``benchmarks/bench_dag_swarm.py`` (run via
``make bench-dag-swarm``); here we execute tiny shapes under both
schedulers so the default test run catches harness rot without paying
the 100-level sweep.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

BENCHES = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def load_bench():
    # the bench imports its sibling shape module by name
    sys.path.insert(0, str(BENCHES))
    try:
        spec = importlib.util.spec_from_file_location(
            "bench_dag_swarm", BENCHES / "bench_dag_swarm.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(BENCHES))
    return module


@pytest.fixture(scope="module")
def bench():
    return load_bench()


@pytest.mark.parametrize("scheduler", ["centralized", "swarm"])
def test_tiny_chain_runs(bench, scheduler):
    report = bench.run_chain(scheduler, depth=4)
    # run_chain asserts the chain's answer internally; check the shape
    assert report["makespan_s"] > 0
    assert report["activations"] == 4
    if scheduler == "swarm":
        assert report["client_invocations"] == 1
        assert report["worker_invocations"] == 3
    else:
        assert report["client_invocations"] == 4


def test_merge_tree_swarm_traced_runs_are_deterministic(bench):
    report_a, trace_a = bench.run_merge_tree("swarm", trace=True)
    report_b, trace_b = bench.run_merge_tree("swarm", trace=True)
    assert report_a == report_b
    assert trace_a and trace_a == trace_b


def test_shape_builders_are_shared_with_pipeline_bench(bench):
    shapes = sys.modules["bench_dag_pipeline"]
    assert bench.shapes is shapes
    for name in ("build_merge_tree", "build_chain", "build_wide_deep"):
        assert callable(getattr(shapes, name))
