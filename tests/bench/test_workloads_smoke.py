"""Fast smoke of the workloads bench harness (reduced matrix).

The full sweep (``make bench-workloads``) is nightly-tier; here we verify
the harness machinery — scan cell runner, streaming config runner, trace
identity — at a scale small enough for the unit suite, plus the mixed
scan/stream/batch mode of the tenant-storm bench.
"""

from __future__ import annotations

from benchmarks import bench_tenant_storm
from benchmarks import bench_workloads as bench

SCAN_ROWS = 8_000


class TestScanHarness:
    def test_pushdown_cell_beats_baseline_bytes(self):
        baseline = bench.run_scan_cell(
            "10pct", 8, "cos", pushdown=False, table_rows=SCAN_ROWS
        )
        push = bench.run_scan_cell(
            "10pct", 8, "cos", pushdown=True, table_rows=SCAN_ROWS
        )
        assert push["value"] == baseline["value"]
        assert push["bytes_read"] < baseline["bytes_read"]
        assert push["groups_pruned"] > 0
        assert baseline["groups_pruned"] == 0
        assert baseline["rows_scanned"] == SCAN_ROWS

    def test_same_seed_cell_is_reproducible(self):
        first = bench.run_scan_cell(
            "1pct", 8, "cos", pushdown=True, table_rows=SCAN_ROWS
        )
        second = bench.run_scan_cell(
            "1pct", 8, "cos", pushdown=True, table_rows=SCAN_ROWS
        )
        assert first == second


class TestStreamingHarness:
    def test_reuse_config_reports_reuse(self):
        report = bench.run_stream_config(
            "overlap_reuse", bench.STREAM_CONFIGS["overlap_reuse"]
        )
        assert report["windows_fired"] > 0
        assert report["reused_partials"] > 0
        assert report["cache_local_hits"] + report["cache_peer_hits"] > 0

    def test_traced_runs_are_byte_identical(self):
        assert bench.traced_scan_jsonl() == bench.traced_scan_jsonl()
        assert bench.traced_stream_jsonl() == bench.traced_stream_jsonl()


class TestMixedTenantClasses:
    def test_mixed_mode_reports_per_class_jain(self):
        report = bench_tenant_storm.run_mode(
            "drr",
            n_tenants=6,
            tasks_per_tenant=2,
            seed=99,
            classes=bench_tenant_storm.MIXED_CLASSES,
        )
        assert set(report["jain_by_class"]) == {"scan", "stream", "batch"}
        assert all(0.0 < j <= 1.0 for j in report["jain_by_class"].values())
        assert report["task_s"] == {"scan": 20.0, "stream": 45.0, "batch": 90.0}
