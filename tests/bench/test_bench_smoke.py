"""Small-scale smoke tests of the benchmark harness modules.

The real experiment scales live in ``benchmarks/``; here we verify the
harness machinery (runners, reporting, timeline extraction) on tiny inputs
so the unit suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.bench import fig2_spawning, fig3_elasticity, fig4_mergesort, table3_airbnb
from repro.bench.reporting import Figure, Table, concurrency_timeline


class TestReporting:
    def test_table_render(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", 1_000_000)
        text = table.render()
        assert "T" in text
        assert "2.5" in text
        assert "1,000,000" in text

    def test_table_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_figure_render(self):
        fig = Figure("F", x_label="x", y_label="y")
        series = fig.add_series("s1")
        series.add(1, 2)
        text = fig.render()
        assert "s1" in text and "(1, 2)" in text

    def test_concurrency_timeline(self):
        intervals = [(0.0, 10.0), (0.0, 10.0), (5.0, 15.0)]
        timeline = concurrency_timeline(intervals, resolution=5.0)
        assert timeline[0] == (0.0, 2)
        # at t=5 the third interval started
        assert dict(timeline)[5.0] == 3
        assert dict(timeline)[15.0] == 0

    def test_timeline_empty(self):
        assert concurrency_timeline([]) == []


class TestFig2Harness:
    def test_small_run(self):
        result = fig2_spawning.run_spawning(
            mode="local", n_functions=10, task_seconds=5.0, seed=1
        )
        assert result.n_functions == 10
        assert result.total_s > result.invocation_phase_s
        assert max(level for _t, level in result.concurrency) <= 10

    def test_report_builds(self):
        result = fig2_spawning.run_spawning(
            mode="massive", n_functions=10, task_seconds=2.0, seed=1
        )
        table = fig2_spawning.report([result])
        assert "massive" in table.render()


class TestFig3Harness:
    def test_small_workload(self):
        result = fig3_elasticity.run_workload(20, seed=2)
        assert result.n_functions == 20
        assert result.reached_full_concurrency
        assert result.mean_duration_s >= 60.0


class TestFig4Harness:
    def test_single_point(self):
        point = fig4_mergesort.run_point(100_000, 1, seed=3)
        assert point.functions_spawned == 3
        assert point.seconds > 0

    def test_deeper_tree_spawns_more_functions(self):
        shallow = fig4_mergesort.run_point(100_000, 0, seed=3)
        deep = fig4_mergesort.run_point(100_000, 2, seed=3)
        assert deep.functions_spawned > shallow.functions_spawned


class TestTable3Harness:
    def test_sequential_baseline_near_paper(self):
        row = table3_airbnb.run_sequential_baseline(seed=4)
        assert abs(row.exec_time_s - 5160) / 5160 < 0.05

    def test_one_parallel_row(self):
        row = table3_airbnb.run_airbnb("64MB", sample_cap=4096, seed=4)
        assert 40 <= row.concurrency <= 50
        assert row.speedup > 5
        assert row.comments > 1_000_000

    def test_report_includes_paper_columns(self):
        rows = [
            table3_airbnb.run_sequential_baseline(seed=4),
            table3_airbnb.run_airbnb("64MB", sample_cap=4096, seed=4),
        ]
        text = table3_airbnb.report(rows).render()
        assert "No / Sequential" in text
        assert "47 executors" in text  # the paper column
