"""Table 1 conformance: the IBM-PyWren column of the feature matrix.

Each test pins one row of the paper's PyWren-vs-IBM-PyWren comparison.
"""

from __future__ import annotations

import pytest

import repro as pw
from repro.config import InvokerMode


class TestMapReduceRow:
    """'Broader support for MapReduce jobs. Also, it includes a
    reduceByKey-like operation to run one reducer per object key.'"""

    def test_full_mapreduce_supported(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            reducer = executor.map_reduce(
                lambda x: x + 1, [1, 2, 3], lambda rs: sum(rs)
            )
            return executor.get_result(reducer)

        assert env.run(main) == 9

    def test_reduce_by_key_mode(self, env):
        env.storage.create_bucket("keys")
        env.storage.put_object("keys", "a", b"xx")
        env.storage.put_object("keys", "b", b"yyyy")

        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce(
                lambda p: p.size,
                "cos://keys",
                lambda rs: sum(rs),
                reducer_one_per_object=True,
            )
            return {
                r.metadata["object_key"]: v
                for r, v in zip(reducers, executor.get_result(reducers))
            }

        assert env.run(main) == {"a": 2, "b": 4}


class TestPartitioningRow:
    """'Automatic; data partitioning based on user-defined chunk sizes or
    on the data object granularity.'"""

    def test_chunk_size_partitioning(self, env):
        env.storage.create_bucket("d")
        env.storage.put_object("d", "obj", b"z" * 100)

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda p: p.size, "cos://d", chunk_size=40)
            return executor.get_result(futures)

        assert env.run(main) == [40, 40, 20]

    def test_object_granularity_default(self, env):
        env.storage.create_bucket("d")
        for key in ["1", "2", "3"]:
            env.storage.put_object("d", key, b"ab")

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda p: p.key, "cos://d")
            return executor.get_result(futures)

        assert env.run(main) == ["1", "2", "3"]


class TestComposabilityRow:
    """'Dynamic compositions of functions; e.g. sequences: f3 = f2 . f1,
    nested parallelism (mergesort).'"""

    def test_sequences(self, env):
        def main():
            return pw.sequence([lambda x: x + 1, lambda x: x * 3], 2).result()

        assert env.run(main) == 9

    def test_nested_parallelism_mergesort(self, env):
        from repro.sort import serverless_mergesort

        def main():
            return serverless_mergesort([4, 1, 3, 2], depth=1).result()

        assert env.run(main) == [1, 2, 3, 4]


class TestRuntimeRow:
    """'Based on Docker; possibility for users to create its own custom
    runtime ... and share it with other users.'"""

    def test_custom_runtime_created_and_shared(self, env):
        image = env.registry.build_custom_runtime(
            "alice/viz:1", owner="alice", extra_packages=["matplotlib"]
        )
        assert image.has_package("matplotlib")

        def main():
            # another user references the shared image by name
            executor = pw.ibm_cf_executor(runtime="alice/viz:1")
            return executor.call_async(lambda x: x, "ok").result()

        assert env.run(main) == "ok"


class TestSpawningRow:
    """'Faster; client calls a remote invoker function, which starts all
    functions in parallel within the cloud.'"""

    def test_remote_invoker_functions_exist(self, env):
        def main():
            executor = pw.ibm_cf_executor(invoker_mode=InvokerMode.MASSIVE)
            futures = executor.map(lambda x: x, list(range(10)))
            executor.get_result(futures)
            return [
                r.action_name
                for r in env.platform.activations()
                if r.action_name == "pywren_remote_invoker"
            ]

        invokers = env.run(main)
        assert len(invokers) >= 1


class TestPortabilityRow:
    """'Can work with Apache OpenWhisk' — the platform abstraction is the
    OpenWhisk model (namespaces/actions/activations)."""

    def test_openwhisk_concepts_exposed(self, env):
        from repro.faas import Action, ActivationRecord, Namespace

        assert Namespace and Action and ActivationRecord

        def main():
            executor = pw.ibm_cf_executor()
            future = executor.call_async(lambda x: x, 1)
            future.result()
            record = env.platform.get_activation(
                env.platform.activations()[-1].activation_id
            )
            return record.namespace

        assert env.run(main) == "guest"
