"""Tests for the Watson Studio notebook stand-in."""

from __future__ import annotations

import pytest

import repro as pw
from repro.studio import Notebook, WatsonStudio


class TestNotebookBasics:
    def test_cells_run_in_order_with_shared_namespace(self, env):
        studio = WatsonStudio(env)
        notebook = studio.create_notebook("analysis")
        notebook.add_cell(lambda ns: ns.setdefault("x", 10), label="setup")
        notebook.add_cell(lambda ns: ns["x"] * 2, label="compute")
        cells = notebook.run()
        assert [c.label for c in cells] == ["setup", "compute"]
        assert cells[1].output == 20
        assert all(c.ok for c in cells)

    def test_cell_durations_use_virtual_time(self, env):
        studio = WatsonStudio(env)
        notebook = studio.create_notebook("timed")

        def slow_cell(ns):
            pw.sleep(120)
            return "done"

        notebook.add_cell(slow_cell)
        cells = notebook.run()
        assert cells[0].duration == pytest.approx(120.0, abs=1.0)

    def test_error_stops_execution(self, env):
        studio = WatsonStudio(env)
        notebook = studio.create_notebook("broken")
        notebook.add_cell(lambda ns: 1, label="fine")
        notebook.add_cell(lambda ns: 1 / 0, label="boom")
        notebook.add_cell(lambda ns: 2, label="never")
        cells = notebook.run()
        assert len(cells) == 2
        assert not cells[1].ok
        assert "ZeroDivisionError" in cells[1].error

    def test_report_format(self, env):
        studio = WatsonStudio(env)
        notebook = studio.create_notebook("rep", vcpus=4, memory_gb=16)
        notebook.add_cell(lambda ns: None, label="only")
        notebook.run()
        report = notebook.report()
        assert "4 vCPU, 16 GB RAM" in report
        assert "only" in report
        assert "total:" in report

    def test_duplicate_names_rejected(self, env):
        studio = WatsonStudio(env)
        studio.create_notebook("nb")
        with pytest.raises(ValueError):
            studio.create_notebook("nb")
        assert studio.list_notebooks() == ["nb"]


class TestNotebookWithPyWren:
    def test_pywren_inside_notebook(self, env):
        """§4's pitch: import IBM-PyWren in a notebook, run parallel jobs."""
        studio = WatsonStudio(env)
        notebook = studio.create_notebook("parallel")

        def pywren_cell(ns):
            executor = pw.ibm_cf_executor()
            executor.map(lambda x: x + 7, [3, 6, 9])
            ns["result"] = executor.get_result()
            return ns["result"]

        notebook.add_cell(pywren_cell)
        cells = notebook.run()
        assert cells[0].output == [10, 13, 16]

    def test_run_inside_existing_env_run(self, env):
        """A notebook can execute within client code already in env.run."""

        def main():
            studio = WatsonStudio(env)
            notebook = studio.create_notebook("inner")
            notebook.add_cell(lambda ns: pw.now())
            return notebook.run()[0].ok

        assert env.run(main)
