"""Multi-tenant determinism gate: the region trace is byte-identical.

``golden_trace_multitenant.jsonl`` was exported from the frozen
three-tenant workload in :mod:`tests.faas.golden_workload_multitenant`
when the multi-tenant control plane landed.  Every same-seed rerun must
reproduce it byte for byte — admission, DRR dispatch order, timestamps,
JSON serialization, everything.
"""

from __future__ import annotations

import pathlib

from tests.faas.golden_workload_multitenant import GOLDEN_PATH, run_traced

GOLDEN = pathlib.Path(GOLDEN_PATH)


class TestGoldenMultitenant:
    def test_multitenant_trace_matches_golden(self):
        got = run_traced()
        want = GOLDEN.read_text(encoding="utf-8")
        assert want, "golden fixture missing or empty"
        # compare prefixes first for a readable diff on regression
        if got != want:
            for i, (a, b) in enumerate(zip(got.splitlines(), want.splitlines())):
                assert a == b, f"first divergence at trace line {i + 1}"
        assert got == want

    def test_golden_run_is_self_deterministic(self):
        assert run_traced() == run_traced()

    def test_golden_fixture_exercises_the_tenant_plane(self):
        """Guard against the fixture silently degrading to single-tenant:
        it must contain weighted-fair dispatch events for every tenant."""
        text = GOLDEN.read_text(encoding="utf-8")
        assert '"controller.dispatch"' in text
        for tenant in ("tenant-a", "tenant-b", "tenant-c"):
            assert f'"{tenant}"' in text
