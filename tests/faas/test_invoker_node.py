"""Unit tests for invoker nodes (container pool + memory accounting)."""

from __future__ import annotations

import pytest

from repro.faas.action import Action
from repro.faas.invoker_node import InvokerNode


def make_action(name="fn", memory=256) -> Action:
    return Action(
        namespace="guest",
        name=name,
        handler=lambda p, c: None,
        runtime="python-jessie:3",
        memory_mb=memory,
        timeout_s=600,
    )


@pytest.fixture()
def node() -> InvokerNode:
    return InvokerNode(0, memory_mb=1024, warm_idle_ttl=600.0)


class TestColdPlacement:
    def test_cold_start_reserves_memory(self, node):
        placement = node.try_place(make_action(), now=0.0)
        assert placement is not None
        assert placement.cold
        assert node.used_mb == 256

    def test_needs_pull_until_cached(self, node):
        action = make_action()
        assert node.try_place(action, 0.0).needs_pull
        node.cache_image(action.runtime)
        assert not node.try_place(action, 0.0).needs_pull

    def test_capacity_exhaustion_returns_none(self, node):
        action = make_action()
        for _ in range(4):  # 4 x 256 = 1024 MB
            assert node.try_place(action, 0.0) is not None
        assert node.try_place(action, 0.0) is None

    def test_oversized_action_rejected(self, node):
        assert node.try_place(make_action(memory=2048), 0.0) is None


class TestWarmReuse:
    def test_release_then_warm_start(self, node):
        action = make_action()
        placement = node.try_place(action, 0.0)
        node.release(placement.container, 10.0)
        assert node.idle_count() == 1
        warm = node.try_place(action, 11.0)
        assert warm is not None
        assert not warm.cold
        assert warm.container is placement.container
        assert node.warm_starts == 1

    def test_warm_only_for_same_action(self, node):
        placement = node.try_place(make_action("a"), 0.0)
        node.release(placement.container, 1.0)
        other = node.try_place(make_action("b"), 2.0)
        assert other.cold

    def test_try_place_warm_does_not_cold_start(self, node):
        assert node.try_place_warm(make_action(), 0.0) is None
        assert node.used_mb == 0

    def test_idle_containers_keep_memory(self, node):
        placement = node.try_place(make_action(), 0.0)
        node.release(placement.container, 1.0)
        assert node.used_mb == 256


class TestEviction:
    def test_pressure_evicts_stalest_idle(self, node):
        action_a = make_action("a", memory=512)
        action_b = make_action("b", memory=512)
        pa = node.try_place(action_a, 0.0)
        pb = node.try_place(action_b, 1.0)
        node.release(pa.container, 2.0)  # stalest
        node.release(pb.container, 3.0)
        # node is "full" of idle containers; a new 512 MB action fits by
        # evicting the stalest one
        pc = node.try_place(make_action("c", memory=512), 4.0)
        assert pc is not None
        assert node.used_mb == 1024
        # the stale 'a' container was evicted, 'b' kept warm
        assert node.try_place_warm(action_a, 5.0) is None
        assert node.try_place_warm(action_b, 5.0) is not None

    def test_ttl_expiry(self, node):
        action = make_action()
        placement = node.try_place(action, 0.0)
        node.release(placement.container, 0.0)
        # after the TTL the idle container is gone and memory is freed
        follow_up = node.try_place(action, 700.0)
        assert follow_up.cold
        assert node.used_mb == 256

    def test_eviction_insufficient_returns_none(self, node):
        # fill with busy containers (never released): nothing to evict
        for _ in range(4):
            node.try_place(make_action(), 0.0)
        assert node.try_place(make_action(), 1.0) is None
