"""Unit tests for the Cloud Functions controller."""

from __future__ import annotations

import pytest

from repro.cos import CloudObjectStorage
from repro.faas import (
    ActionNotFound,
    ActivationNotFound,
    ActivationStatus,
    CloudFunctions,
    NamespaceNotFound,
    RuntimeNotFound,
    SystemLimits,
    ThrottledError,
)
from repro.vtime import gather


@pytest.fixture()
def platform(kernel) -> CloudFunctions:
    store = CloudObjectStorage(kernel)
    return CloudFunctions(kernel, store, seed=3)


def deploy_echo(platform, name="echo", **kwargs):
    def handler(params, ctx):
        return params

    return platform.create_action("guest", name, handler, **kwargs)


class TestActionManagement:
    def test_create_and_invoke(self, kernel, platform):
        deploy_echo(platform)

        def main():
            aid = platform.invoke("guest", "echo", {"v": 1})
            record = platform.wait_activation(aid)
            return record.status, record.result

        assert kernel.run(main) == (ActivationStatus.SUCCESS, {"v": 1})

    def test_unknown_runtime_rejected(self, platform):
        with pytest.raises(RuntimeNotFound):
            deploy_echo(platform, runtime="ghost:1")

    def test_memory_above_cap_rejected(self, platform):
        with pytest.raises(ValueError):
            deploy_echo(platform, memory_mb=1024)

    def test_default_memory_applied(self, platform):
        action = deploy_echo(platform)
        assert action.memory_mb == platform.limits.default_memory_mb

    def test_timeout_clamped_to_platform_limit(self, platform):
        action = deploy_echo(platform, timeout_s=10_000)
        assert action.timeout_s == platform.limits.max_exec_seconds

    def test_invoke_unknown_action(self, kernel, platform):
        deploy_echo(platform)

        def main():
            with pytest.raises(ActionNotFound):
                platform.invoke("guest", "ghost", {})
            return True

        assert kernel.run(main)

    def test_invoke_unknown_namespace(self, kernel, platform):
        def main():
            with pytest.raises(NamespaceNotFound):
                platform.invoke("nobody", "fn", {})
            return True

        assert kernel.run(main)

    def test_namespace_lists_actions(self, platform):
        deploy_echo(platform, "b_fn")
        deploy_echo(platform, "a_fn")
        assert platform.namespace("guest").list_actions() == ["a_fn", "b_fn"]


class TestExecution:
    def test_handler_error_recorded(self, kernel, platform):
        def bad(params, ctx):
            raise ValueError("user bug")

        platform.create_action("guest", "bad", bad)

        def main():
            record = platform.wait_activation(platform.invoke("guest", "bad", {}))
            return record.status, record.error

        status, error = kernel.run(main)
        assert status == ActivationStatus.ERROR
        assert "user bug" in error

    def test_timeout_labelled_and_clamped(self, kernel, platform):
        def slow(params, ctx):
            ctx.sleep(100)
            return "never"

        platform.create_action("guest", "slow", slow, timeout_s=30)

        def main():
            record = platform.wait_activation(platform.invoke("guest", "slow", {}))
            return record.status, record.duration, record.result

        status, duration, result = kernel.run(main)
        assert status == ActivationStatus.TIMEOUT
        assert duration == pytest.approx(30.0)
        assert result is None

    def test_cold_then_warm(self, kernel, platform):
        deploy_echo(platform)

        def main():
            first = platform.wait_activation(platform.invoke("guest", "echo", {}))
            second = platform.wait_activation(platform.invoke("guest", "echo", {}))
            return first.cold_start, second.cold_start

        assert kernel.run(main) == (True, False)

    def test_cold_start_costs_time_warm_does_not(self, kernel, platform):
        deploy_echo(platform)

        def main():
            r1 = platform.wait_activation(platform.invoke("guest", "echo", {}))
            r2 = platform.wait_activation(platform.invoke("guest", "echo", {}))
            return r1.wait_time, r2.wait_time

        cold_wait, warm_wait = kernel.run(main)
        assert cold_wait > warm_wait

    def test_custom_runtime_pull_once_per_node(self, kernel, platform):
        platform.registry.build_custom_runtime(
            "u/extra:1", owner="u", extra_packages=["matplotlib"]
        )
        deploy_echo(platform, "custom", runtime="u/extra:1")

        def main():
            r1 = platform.wait_activation(platform.invoke("guest", "custom", {}))
            r2 = platform.wait_activation(platform.invoke("guest", "custom", {}))
            return r1.image_pulled, r2.image_pulled, r1.wait_time, r2.wait_time

        pulled1, pulled2, wait1, wait2 = kernel.run(main)
        assert pulled1 is True
        assert pulled2 is False  # warm container: no second pull
        assert wait1 > wait2

    def test_activation_record_fields(self, kernel, platform):
        deploy_echo(platform)

        def main():
            return platform.wait_activation(platform.invoke("guest", "echo", {"a": 1}))

        record = kernel.run(main)
        assert record.activation_id.startswith("act-")
        assert record.invoker_id is not None
        assert record.container_id.startswith("wsk-cont-")
        assert record.finished
        start, end = record.interval()
        assert end >= start >= record.submit_time

    def test_unknown_activation(self, platform):
        with pytest.raises(ActivationNotFound):
            platform.get_activation("act-xxx")
        with pytest.raises(ActivationNotFound):
            platform.wait_activation("act-xxx")


class TestConcurrencyLimit:
    def test_throttled_over_limit(self, kernel):
        store = CloudObjectStorage(kernel)
        platform = CloudFunctions(
            kernel, store, limits=SystemLimits(max_concurrent=2)
        )

        def slow(params, ctx):
            ctx.sleep(50)

        platform.create_action("guest", "slow", slow)

        def main():
            platform.invoke("guest", "slow", {})
            platform.invoke("guest", "slow", {})
            with pytest.raises(ThrottledError):
                platform.invoke("guest", "slow", {})
            return platform.throttled_total

        assert kernel.run(main) == 1

    def test_slot_freed_after_completion(self, kernel):
        store = CloudObjectStorage(kernel)
        platform = CloudFunctions(
            kernel, store, limits=SystemLimits(max_concurrent=1)
        )

        def quick(params, ctx):
            ctx.sleep(1)
            return "ok"

        platform.create_action("guest", "quick", quick)

        def main():
            first = platform.invoke("guest", "quick", {})
            platform.wait_activation(first)
            second = platform.invoke("guest", "quick", {})
            return platform.wait_activation(second).status

        assert kernel.run(main) == ActivationStatus.SUCCESS

    def test_peak_active_tracked(self, kernel, platform):
        def slow(params, ctx):
            ctx.sleep(10)

        platform.create_action("guest", "slow", slow)

        def main():
            tasks = [
                kernel.spawn(platform.invoke, "guest", "slow", {})
                for _ in range(5)
            ]
            gather(tasks)
            for record in platform.activations():
                platform.wait_activation(record.activation_id)
            return platform.peak_active

        assert kernel.run(main) == 5

    def test_capacity_queueing_when_cluster_full(self, kernel):
        """More activations than cluster memory: extras wait, all finish."""
        store = CloudObjectStorage(kernel)
        limits = SystemLimits(
            max_concurrent=100, invoker_count=1, invoker_memory_mb=512
        )  # room for only 2 x 256 MB containers
        platform = CloudFunctions(kernel, store, limits=limits)

        def slow(params, ctx):
            ctx.sleep(10)
            return "done"

        platform.create_action("guest", "slow", slow)

        def main():
            ids = [platform.invoke("guest", "slow", {}) for _ in range(6)]
            records = [platform.wait_activation(aid) for aid in ids]
            assert all(r.status == ActivationStatus.SUCCESS for r in records)
            return kernel.now()

        # 6 functions, 2 at a time, 10 s each -> >= 30 s
        assert kernel.run(main) >= 30.0
