"""TenantRegistry: quotas, 429 reasons, accounting, platform attachment."""

from __future__ import annotations

import pytest

import repro as pw
from repro.config import TenantConfig
from repro.faas.errors import ThrottledError
from repro.faas.tenants import TenantNotFound, TenantRegistry


class TestTenantConfig:
    def test_defaults_are_unlimited(self):
        config = TenantConfig("acme")
        config.validate()
        assert config.weight == 1.0
        assert config.max_concurrent is None
        assert config.memory_quota_mb is None
        assert config.rate_per_s is None
        assert config.max_pending is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "a", "weight": 0.0},
            {"name": "a", "weight": -1.0},
            {"name": "a", "max_concurrent": 0},
            {"name": "a", "memory_quota_mb": 0},
            {"name": "a", "rate_per_s": 0.0},
            {"name": "a", "rate_burst": 0},
            {"name": "a", "max_pending": 0},
        ],
    )
    def test_validate_rejects(self, kwargs):
        with pytest.raises(ValueError):
            TenantConfig(**kwargs).validate()


class TestRegistryMembership:
    def test_register_and_get(self):
        registry = TenantRegistry([TenantConfig("a", weight=2.0)])
        assert registry.get("a").weight == 2.0
        assert registry.known("a")
        assert not registry.known("b")
        assert len(registry) == 1

    def test_register_by_name_and_idempotence(self):
        registry = TenantRegistry()
        config = registry.register("a")
        assert config == TenantConfig("a")
        assert registry.register(TenantConfig("a")) == config
        with pytest.raises(ValueError):
            registry.register(TenantConfig("a", weight=2.0))

    def test_unknown_namespace_rejected_without_default(self):
        registry = TenantRegistry()
        with pytest.raises(TenantNotFound):
            registry.get("ghost")
        with pytest.raises(TenantNotFound):
            registry.admit("ghost", 256, 0.0)

    def test_default_template_lazily_registers(self):
        registry = TenantRegistry(
            default=TenantConfig("template", max_concurrent=2, weight=0.5)
        )
        config = registry.get("newcomer")
        assert config.name == "newcomer"
        assert config.max_concurrent == 2
        assert config.weight == 0.5
        assert registry.known("newcomer")

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            TenantRegistry(policy="best-effort")


class TestAdmission:
    def test_concurrency_quota(self):
        registry = TenantRegistry([TenantConfig("a", max_concurrent=2)])
        registry.admit("a", 256, 0.0)
        registry.admit("a", 256, 0.0)
        with pytest.raises(ThrottledError) as err:
            registry.admit("a", 256, 0.0)
        assert err.value.reason == "concurrency"
        assert err.value.retry_after is not None
        # completion frees the slot
        registry.on_dispatched("a")
        registry.on_complete("a", 256)
        registry.admit("a", 256, 1.0)

    def test_memory_quota(self):
        registry = TenantRegistry([TenantConfig("a", memory_quota_mb=512)])
        registry.admit("a", 512, 0.0)
        with pytest.raises(ThrottledError) as err:
            registry.admit("a", 1, 0.0)
        assert err.value.reason == "memory"

    def test_rate_quota_token_bucket_refills_on_virtual_time(self):
        registry = TenantRegistry(
            [TenantConfig("a", rate_per_s=2.0, rate_burst=2)]
        )
        registry.admit("a", 256, 0.0)
        registry.admit("a", 256, 0.0)
        with pytest.raises(ThrottledError) as err:
            registry.admit("a", 256, 0.0)
        assert err.value.reason == "rate"
        assert err.value.retry_after == pytest.approx(0.5)
        # half a second refills one token at 2/s
        registry.admit("a", 256, 0.5)

    def test_queue_depth_cap(self):
        registry = TenantRegistry([TenantConfig("a", max_pending=1)])
        registry.admit("a", 256, 0.0)
        with pytest.raises(ThrottledError) as err:
            registry.admit("a", 256, 0.0)
        assert err.value.reason == "queue"
        # dispatch (not completion) is what drains pending
        registry.on_dispatched("a")
        registry.admit("a", 256, 0.0)

    def test_refusal_consumes_nothing(self):
        registry = TenantRegistry(
            [TenantConfig("a", max_concurrent=1, rate_per_s=10.0, rate_burst=5)]
        )
        registry.admit("a", 256, 0.0)
        for _ in range(3):
            with pytest.raises(ThrottledError):
                registry.admit("a", 256, 0.0)
        state = registry.stats()["a"]
        assert state["inflight"] == 1
        assert state["admitted"] == 1
        assert state["throttled"] == {"concurrency": 3}
        assert registry.throttled_total == 3

    def test_release_admission_rolls_back(self):
        registry = TenantRegistry([TenantConfig("a", max_concurrent=1)])
        registry.admit("a", 256, 0.0)
        registry.release_admission("a", 256)
        state = registry.stats()["a"]
        assert state["inflight"] == 0
        assert state["pending"] == 0
        assert state["admitted"] == 0
        registry.admit("a", 256, 0.0)


class TestPlatformAttachment:
    def test_attach_twice_rejected(self):
        env = pw.CloudEnvironment.create(tenants=[TenantConfig("a")])
        with pytest.raises(ValueError):
            env.platform.attach_tenants(TenantRegistry())

    def test_multitenant_run_accounts_per_tenant(self):
        env = pw.CloudEnvironment.create(
            tenants=[TenantConfig("tenant-a", weight=2.0), TenantConfig("tenant-b")]
        )

        def main():
            exa = env.executor(namespace="tenant-a")
            exb = env.executor(namespace="tenant-b")
            fa = exa.map(lambda x: x + 1, [1, 2, 3])
            fb = exb.map(lambda x: x * 2, [4, 5])
            return exa.get_result(fa), exb.get_result(fb)

        ra, rb = env.run(main)
        assert ra == [2, 3, 4]
        assert rb == [8, 10]
        stats = env.platform.tenants.stats()
        assert stats["tenant-a"]["admitted"] == 3
        assert stats["tenant-a"]["dispatched"] == 3
        assert stats["tenant-a"]["completed"] == 3
        assert stats["tenant-b"]["completed"] == 2
        assert stats["tenant-a"]["inflight"] == 0
        assert stats["tenant-b"]["inflight_mb"] == 0
        # every activation carries its dispatch timestamp
        for record in env.platform.activations():
            assert record.dispatch_time is not None
            assert record.dispatch_time >= record.submit_time

    def test_unregistered_namespace_refused_without_template(self):
        env = pw.CloudEnvironment.create(tenants=[TenantConfig("tenant-a")])

        def main():
            executor = env.executor(namespace="intruder")
            executor.map(lambda x: x, [1])
            return executor.get_result()

        with pytest.raises(TenantNotFound):
            env.run(main)

    def test_tenant_quota_throttles_then_recovers(self):
        """A tenant over its concurrency quota gets 429 + retry_after and
        the gateway client rides it out; per-tenant accounting shows the
        throttles and the run still completes."""
        env = pw.CloudEnvironment.create(
            tenants=TenantRegistry(
                [TenantConfig("guest", max_concurrent=2)]
            ),
        )

        def main():
            executor = pw.ibm_cf_executor()

            def task(x):
                pw.sleep(5)
                return x

            return executor.get_result(executor.map(task, list(range(6))))

        assert env.run(main) == list(range(6))
        state = env.platform.tenants.stats()["guest"]
        assert state["completed"] == 6
        assert state["throttled"].get("concurrency", 0) > 0
        assert env.platform.throttled_total >= state["throttled"]["concurrency"]

    def test_trace_tenant_dimension_and_cli_filter(self, tmp_path):
        env = pw.CloudEnvironment.create(
            tenants=[TenantConfig("tenant-a"), TenantConfig("tenant-b")],
            trace=True,
        )

        def main():
            exa = env.executor(namespace="tenant-a")
            exb = env.executor(namespace="tenant-b")
            fa = exa.map(lambda x: x, [1])
            fb = exb.map(lambda x: x, [2])
            exa.get_result(fa), exb.get_result(fb)

        env.run(main)
        from repro.trace import export

        events = env.tracer.events()
        tenants_seen = {e.get_id("tenant") for e in events} - {None}
        assert tenants_seen == {"tenant-a", "tenant-b"}
        # the CLI --tenant filter keeps exactly one tenant's events
        trace_file = tmp_path / "trace.jsonl"
        trace_file.write_text(export.to_jsonl(events), encoding="utf-8")
        from repro.__main__ import main as cli_main

        assert cli_main(["trace", str(trace_file), "--tenant", "tenant-a"]) == 0
        assert cli_main(["trace", str(trace_file), "--tenant", "nobody"]) == 1

    def test_billing_carries_namespace(self):
        env = pw.CloudEnvironment.create(
            tenants=[TenantConfig("tenant-a"), TenantConfig("tenant-b")]
        )

        def main():
            exa = env.executor(namespace="tenant-a")
            exb = env.executor(namespace="tenant-b")
            fa = exa.map(lambda x: x, [1, 2])
            fb = exb.map(lambda x: x, [3])
            exa.get_result(fa), exb.get_result(fb)

        env.run(main)
        by_ns = env.platform.billing.by_namespace()
        assert set(by_ns) == {"tenant-a", "tenant-b"}
        assert len(env.platform.billing.entries_for("tenant-a")) == 2
