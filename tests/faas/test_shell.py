"""Tests for the wsk-style shell."""

from __future__ import annotations

import pytest

import repro as pw
from repro.faas.shell import ShellError, WskShell


@pytest.fixture()
def ran_env(cloud):
    """An environment with one completed map job."""
    env = cloud()

    def main():
        executor = pw.ibm_cf_executor()

        def task(x):
            return x + 1

        executor.get_result(executor.map(task, [1, 2, 3]))
        return None

    env.run(main)
    return env


class TestShellCommands:
    def test_action_list(self, ran_env):
        out = WskShell(ran_env).run("action list")
        assert "pywren_runner" in out
        assert "256MB" in out

    def test_action_get(self, ran_env):
        shell = WskShell(ran_env)
        name = ran_env.platform.namespace("guest").list_actions()[0]
        out = shell.run(f"action get {name}")
        assert "runtime:   python-jessie:3" in out
        assert "timeout:   600s" in out

    def test_activation_list_and_get(self, ran_env):
        shell = WskShell(ran_env)
        listing = shell.run("activation list --limit 5")
        assert "act-" in listing
        activation_id = ran_env.platform.activations()[0].activation_id
        detail = shell.run(f"activation get {activation_id}")
        assert "status:     success" in detail
        assert "cold start:" in detail

    def test_activation_result(self, ran_env):
        shell = WskShell(ran_env)
        activation_id = ran_env.platform.activations()[0].activation_id
        out = shell.run(f"activation result {activation_id}")
        assert "success" in out or "call_id" in out

    def test_activation_logs_empty(self, ran_env):
        shell = WskShell(ran_env)
        activation_id = ran_env.platform.activations()[0].activation_id
        assert shell.run(f"activation logs {activation_id}") == "(no logs)"

    def test_runtime_list(self, ran_env):
        out = WskShell(ran_env).run("runtime list")
        assert "python-jessie:3" in out
        assert "python 3.6" in out

    def test_namespace_list(self, ran_env):
        assert "/guest" in WskShell(ran_env).run("namespace list")

    def test_billing_summary(self, ran_env):
        out = WskShell(ran_env).run("billing summary")
        assert "activations: 3" in out
        assert "GB-seconds" in out

    def test_property_get(self, ran_env):
        out = WskShell(ran_env).run("property get")
        assert "max_concurrent:    1000" in out


class TestShellErrors:
    def test_unknown_command(self, ran_env):
        with pytest.raises(ShellError, match="unknown command"):
            WskShell(ran_env).run("frobnicate everything")

    def test_too_short(self, ran_env):
        with pytest.raises(ShellError, match="commands:"):
            WskShell(ran_env).run("action")

    def test_unknown_activation(self, ran_env):
        with pytest.raises(ShellError, match="no activation"):
            WskShell(ran_env).run("activation get act-nope")

    def test_action_get_requires_name(self, ran_env):
        with pytest.raises(ShellError, match="usage"):
            WskShell(ran_env).run("action get")

    def test_unparsable_quotes(self, ran_env):
        with pytest.raises(ShellError, match="unparsable"):
            WskShell(ran_env).run('action get "unterminated')
