"""Unit tests for runtimes and the image registry (§3.1)."""

from __future__ import annotations

import pytest

from repro.faas import DEFAULT_RUNTIME_NAME, RuntimeImage, RuntimeRegistry
from repro.faas.errors import RuntimeNotFound


class TestRegistry:
    def test_default_runtime_preinstalled(self):
        registry = RuntimeRegistry()
        image = registry.get(DEFAULT_RUNTIME_NAME)
        assert image.name == "python-jessie:3"
        assert image.has_package("numpy")

    def test_get_missing_raises_with_catalog(self):
        registry = RuntimeRegistry()
        with pytest.raises(RuntimeNotFound, match="python-jessie:3"):
            registry.get("ghost:1")

    def test_publish_and_get(self):
        registry = RuntimeRegistry()
        registry.publish(RuntimeImage(name="me/custom:1", owner="me"))
        assert registry.get("me/custom:1").owner == "me"

    def test_publish_same_name_overwrites(self):
        registry = RuntimeRegistry()
        registry.publish(RuntimeImage(name="x:1", size_mb=100))
        registry.publish(RuntimeImage(name="x:1", size_mb=200))
        assert registry.get("x:1").size_mb == 200

    def test_list_images_sorted(self):
        registry = RuntimeRegistry()
        registry.publish(RuntimeImage(name="zzz:1"))
        registry.publish(RuntimeImage(name="aaa:1"))
        assert registry.list_images() == ["aaa:1", DEFAULT_RUNTIME_NAME, "zzz:1"]

    def test_exists(self):
        registry = RuntimeRegistry()
        assert registry.exists(DEFAULT_RUNTIME_NAME)
        assert not registry.exists("nope")


class TestCustomRuntimes:
    def test_build_custom_adds_packages(self):
        """The §3.1 matplotlib workflow."""
        registry = RuntimeRegistry()
        image = registry.build_custom_runtime(
            "alice/matplotlib:1", owner="alice", extra_packages=["matplotlib"]
        )
        assert image.has_package("matplotlib")
        assert image.has_package("numpy")  # base packages kept
        assert registry.exists("alice/matplotlib:1")  # shared via registry

    def test_custom_image_larger_than_base(self):
        registry = RuntimeRegistry()
        base = registry.get(DEFAULT_RUNTIME_NAME)
        image = registry.build_custom_runtime(
            "u/big:1", owner="u", extra_packages=["matplotlib", "torch"]
        )
        assert image.size_mb > base.size_mb

    def test_existing_package_does_not_grow_image(self):
        registry = RuntimeRegistry()
        base = registry.get(DEFAULT_RUNTIME_NAME)
        image = registry.build_custom_runtime(
            "u/same:1", owner="u", extra_packages=["numpy"]
        )
        assert image.size_mb == base.size_mb

    def test_custom_python_version(self):
        registry = RuntimeRegistry()
        image = registry.build_custom_runtime(
            "u/py39:1", owner="u", extra_packages=[], python_version="3.9"
        )
        assert image.python_version == "3.9"

    def test_derive_from_custom_base(self):
        registry = RuntimeRegistry()
        registry.build_custom_runtime("a/x:1", owner="a", extra_packages=["pkg1"])
        image = registry.build_custom_runtime(
            "b/y:1", owner="b", extra_packages=["pkg2"], base="a/x:1"
        )
        assert image.has_package("pkg1")
        assert image.has_package("pkg2")
