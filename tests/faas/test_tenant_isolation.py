"""Tenant-isolation contracts for the multi-tenant region.

Three properties a tenant can rely on, pinned end to end:

* **IAM boundary** — a key for tenant A can never invoke in tenant B's
  namespace (and works unchanged in its own);
* **quota blast radius** — a neighbour slamming into its own quotas
  leaves a victim tenant's latency and throughput within tolerance of a
  run without the neighbour;
* **billing exactness** — per-tenant billing rollups sum *exactly*
  (``==``, not approx) to the region total.
"""

from __future__ import annotations

import pytest

import repro as pw
from repro.config import TenantConfig
from repro.core.cost import tenant_billing_rollup
from repro.faas.iam import AuthorizationError
from repro.vtime import gather


class TestIamBoundary:
    def test_cross_namespace_key_denied(self):
        env = pw.CloudEnvironment.create(
            tenants=[TenantConfig("tenant-a"), TenantConfig("tenant-b")]
        )
        env.platform.require_auth = True
        env.credentials = env.platform.iam.create_api_key("tenant-a")

        def main():
            intruder = env.executor(namespace="tenant-b")
            with pytest.raises(AuthorizationError):
                intruder.map(lambda x: x, [1])
            # the same key works unchanged in its own namespace
            home = env.executor(namespace="tenant-a")
            return home.get_result(home.map(lambda x: x + 1, [1]))

        assert env.run(main) == [2]
        # nothing of tenant-b's ever ran or was billed
        assert "tenant-b" not in env.platform.billing.by_namespace()


class TestQuotaBlastRadius:
    @staticmethod
    def _victim_makespan(env):
        """Tenant B's six 5-second tasks; returns the job makespan."""

        def task(x):
            pw.sleep(5)
            return x

        executor = env.executor(namespace="tenant-b")
        t0 = pw.now()
        futures = executor.map(task, list(range(6)))
        assert executor.get_result(futures) == list(range(6))
        return pw.now() - t0

    def test_neighbour_quota_exhaustion_stays_contained(self):
        """Tenant A hammering its tiny concurrency quota (429 storms and
        all) must not stretch tenant B's makespan: the refusals bound A's
        footprint, so B sees a near-idle cluster."""
        baseline_env = pw.CloudEnvironment.create(
            seed=7, tenants=[TenantConfig("tenant-b")]
        )
        baseline = baseline_env.run(
            lambda: self._victim_makespan(baseline_env)
        )

        env = pw.CloudEnvironment.create(
            seed=7,
            tenants=[
                TenantConfig("tenant-a", max_concurrent=2),
                TenantConfig("tenant-b"),
            ],
        )

        def main():
            def aggressor():
                def hog(x):
                    pw.sleep(5)
                    return x

                executor = env.executor(namespace="tenant-a")
                futures = executor.map(hog, list(range(12)))
                executor.get_result(futures)

            neighbour = env.kernel.spawn(aggressor, name="aggressor")
            makespan = self._victim_makespan(env)
            gather([neighbour])
            return makespan

        contended = env.run(main)
        stats = env.platform.tenants.stats()
        # the neighbour really was quota-bound...
        assert stats["tenant-a"]["throttled"].get("concurrency", 0) > 0
        assert stats["tenant-a"]["completed"] == 12
        # ...and the victim's throughput survived: all tasks done, makespan
        # within tolerance of the neighbour-free baseline
        assert stats["tenant-b"]["completed"] == 6
        assert stats["tenant-b"]["throttled"] == {}
        assert contended <= baseline * 1.25 + 1.0, (
            f"victim makespan {contended:.2f}s vs baseline {baseline:.2f}s"
        )


class TestBillingExactness:
    def test_per_tenant_totals_sum_exactly_to_region(self):
        env = pw.CloudEnvironment.create(
            tenants=[
                TenantConfig("tenant-a"),
                TenantConfig("tenant-b"),
                TenantConfig("tenant-c"),
            ]
        )

        def main():
            for namespace, n in (("tenant-a", 3), ("tenant-b", 2), ("tenant-c", 4)):
                executor = env.executor(namespace=namespace)
                futures = executor.map(lambda x: x * 2, list(range(n)))
                executor.get_result(futures)

        env.run(main)
        rollup = tenant_billing_rollup(env.platform.billing)
        region = rollup.pop("__region__")
        tenants = sorted(rollup)
        assert tenants == ["tenant-a", "tenant-b", "tenant-c"]
        assert [rollup[t]["activations"] for t in tenants] == [3, 2, 4]
        # exact equality, not approx: the region row is defined as the sum
        # of the per-tenant sums, so no float dust may separate them
        assert sum(rollup[t]["activations"] for t in tenants) == region["activations"]
        assert sum(rollup[t]["gb_seconds"] for t in tenants) == region["gb_seconds"]
        assert sum(rollup[t]["cost"] for t in tenants) == region["cost"]
        # and the region row agrees with the flat meter on the exact counters
        assert region["activations"] == env.platform.billing.activations
        assert region["gb_seconds"] > 0.0
