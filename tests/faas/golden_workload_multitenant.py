"""The frozen workload behind the multi-tenant golden trace.

The multi-tenant control plane (tenant admission + weighted-fair
dispatch) must be *deterministic*: a same-seed run of a concurrent
three-tenant workload produces a byte-identical trace export — same
events, same DRR dispatch order, same timestamps, same JSON.  This
module pins that bar the same way ``tests.exchange.golden_workload``
pins the exchange refactor's:

* ``golden_trace_multitenant.jsonl`` holds the full region trace of the
  workload below (three tenants, weights 4/2/1, a cluster small enough
  that dispatch queues and the deficit-round-robin order shows);
* ``test_golden_multitenant.py`` re-runs it on every test run and
  asserts the export still matches the committed bytes.

Everything here must stay importable at the stable module path
``tests.faas.golden_workload_multitenant`` so the shipped function
pickles by reference with deterministic bytes; regenerate (only for an
intentional, documented behaviour change) with::

    PYTHONPATH=src:. python -c \
        "from tests.faas.golden_workload_multitenant import write_golden; write_golden()"
"""

from __future__ import annotations

import os

SEED = 321
N_TASKS = 6
TASK_SLEEP_S = 3.0
#: name -> DRR weight; deliberately skewed so the dispatch order is
#: weight-shaped, not round-robin
TENANT_WEIGHTS = {"tenant-a": 4.0, "tenant-b": 2.0, "tenant-c": 1.0}
GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_trace_multitenant.jsonl"
)


def spin(x):
    import repro as pw

    pw.sleep(TASK_SLEEP_S)
    return x


def run_traced() -> str:
    """One traced same-seed three-tenant run on a queue-forcing cluster.

    Returns the exported region trace JSONL (every layer, every tenant).
    Executor ids are environment-scoped serials, so the export is a pure
    function of the seed — no normalization needed.
    """
    from repro.config import TenantConfig
    from repro.core.environment import CloudEnvironment
    from repro.faas import SystemLimits
    from repro.trace import export

    env = CloudEnvironment.create(
        seed=SEED,
        trace=True,
        # 2 invokers x 512 MB = four 256 MB actions in flight: 18 queued
        # tasks must leave the dispatch queue in DRR order
        limits=SystemLimits(invoker_count=2, invoker_memory_mb=512),
        tenants=[
            TenantConfig(name, weight=weight)
            for name, weight in TENANT_WEIGHTS.items()
        ],
    )

    def main():
        executors = {
            name: env.executor(namespace=name) for name in TENANT_WEIGHTS
        }
        futures = {
            name: executors[name].map(spin, list(range(N_TASKS)))
            for name in TENANT_WEIGHTS
        }
        return {
            name: executors[name].get_result(futures[name])
            for name in TENANT_WEIGHTS
        }

    results = env.run(main)
    assert results == {name: list(range(N_TASKS)) for name in TENANT_WEIGHTS}, (
        "golden workload result drifted"
    )
    return export.to_jsonl(env.tracer.events())


def write_golden() -> str:
    """(Re)generate the committed golden trace.  Intentional changes only."""
    jsonl = run_traced()
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        fh.write(jsonl)
    print(f"wrote {GOLDEN_PATH} ({len(jsonl.splitlines())} events)")
    return GOLDEN_PATH
