"""Unit tests for the client-side functions gateway."""

from __future__ import annotations

import pytest

from repro.cos import CloudObjectStorage
from repro.faas import (
    ActivationStatus,
    CloudFunctions,
    CloudFunctionsClient,
    SystemLimits,
)
from repro.net import LatencyModel, NetworkLink


def make_platform(kernel, max_concurrent=100):
    store = CloudObjectStorage(kernel)
    platform = CloudFunctions(
        kernel, store, limits=SystemLimits(max_concurrent=max_concurrent), seed=2
    )

    def busy(params, ctx):
        ctx.sleep(params.get("t", 1))
        return params.get("v")

    platform.create_action("guest", "busy", busy)
    return platform


def make_client(kernel, platform, rtt=0.1):
    link = NetworkLink(
        kernel, LatencyModel(rtt=rtt, jitter=0.0, failure_prob=0.0), seed=8
    )
    return CloudFunctionsClient(platform, link)


class TestInvoke:
    def test_invoke_returns_activation_id(self, kernel):
        platform = make_platform(kernel)

        def main():
            client = make_client(kernel, platform)
            aid = client.invoke("guest", "busy", {"v": 7})
            return client.wait(aid).result

        assert kernel.run(main) == 7

    def test_invoke_charges_network_and_api_time(self, kernel):
        platform = make_platform(kernel)

        def main():
            client = make_client(kernel, platform, rtt=1.0)
            t0 = kernel.now()
            client.invoke("guest", "busy", {})
            return kernel.now() - t0

        elapsed = kernel.run(main)
        assert elapsed >= 1.0  # at least the RTT
        assert elapsed < 2.0  # but invoke is non-blocking on execution

    def test_invoke_blocking(self, kernel):
        platform = make_platform(kernel)

        def main():
            client = make_client(kernel, platform)
            record = client.invoke_blocking("guest", "busy", {"t": 5, "v": "x"})
            return record.status, record.result, kernel.now()

        status, result, t = kernel.run(main)
        assert status == ActivationStatus.SUCCESS
        assert result == "x"
        assert t >= 5.0

    def test_invocation_counter(self, kernel):
        platform = make_platform(kernel)

        def main():
            client = make_client(kernel, platform)
            for _ in range(3):
                client.invoke("guest", "busy", {})
            return client.invocations

        assert kernel.run(main) == 3


class TestThrottleRetry:
    def test_throttled_invocations_retry_until_capacity(self, kernel):
        platform = make_platform(kernel, max_concurrent=2)

        def main():
            client = make_client(kernel, platform)
            ids = [client.invoke("guest", "busy", {"t": 10}) for _ in range(4)]
            records = [client.wait(a) for a in ids]
            return (
                [r.status for r in records],
                client.throttle_retries,
            )

        statuses, retries = kernel.run(main)
        assert statuses == [ActivationStatus.SUCCESS] * 4
        assert retries >= 1  # the 3rd/4th invocations had to retry


class TestRetryAfterHint:
    def test_controller_populates_retry_after_from_load(self, kernel):
        from repro.faas.errors import ThrottledError

        platform = make_platform(kernel, max_concurrent=2)

        def main():
            client = make_client(kernel, platform)
            for _ in range(2):
                client.invoke("guest", "busy", {"t": 50})
            # capacity is full: a direct platform call gets the 429 + hint
            try:
                platform.invoke("guest", "busy", {})
            except ThrottledError as exc:
                return exc.retry_after
            return None

        hint = kernel.run(main)
        # full load → the controller asks for the maximum backoff (1.0 s)
        assert hint == pytest.approx(1.0)

    def test_client_honors_retry_after(self, kernel):
        from repro.faas.errors import ThrottledError
        from repro.net import LatencyModel, NetworkLink

        class OneThrottlePlatform:
            """Throttles the first attempt with an explicit hint."""

            def __init__(self, kernel):
                self.kernel = kernel
                self.attempts = 0

            def invoke(self, namespace, action, params, credentials=None):
                self.attempts += 1
                if self.attempts == 1:
                    raise ThrottledError("429", retry_after=5.0)
                return "act-1"

        platform = OneThrottlePlatform(kernel)
        link = NetworkLink(
            kernel, LatencyModel(rtt=0.0, jitter=0.0, failure_prob=0.0), seed=1
        )
        from repro.faas import CloudFunctionsClient

        def main():
            client = CloudFunctionsClient(platform, link)
            t0 = kernel.now()
            aid = client.invoke("guest", "busy", {})
            return aid, kernel.now() - t0, client.throttle_retries

        aid, elapsed, retries = kernel.run(main)
        assert aid == "act-1"
        assert retries == 1
        # the client slept exactly the server's hint, not its own schedule
        # (plus the ~20 µs transfer time of the two zero-RTT requests)
        assert elapsed == pytest.approx(5.0, abs=0.01)


class TestWaitTimeout:
    def test_wait_with_timeout_returns_unfinished_record(self, kernel):
        platform = make_platform(kernel)

        def main():
            client = make_client(kernel, platform)
            aid = client.invoke("guest", "busy", {"t": 100})
            record = client.wait(aid, timeout=5)
            return record.finished, kernel.now()

        finished, t = kernel.run(main)
        assert finished is False
        assert 5.0 <= t <= 7.0
