"""Tests for IAM and per-namespace concurrency isolation."""

from __future__ import annotations

import pytest

from repro.cos import CloudObjectStorage
from repro.faas import CloudFunctions, CloudFunctionsClient, SystemLimits, ThrottledError
from repro.faas.iam import IAM, ApiKey, AuthenticationError, AuthorizationError
from repro.net import LatencyModel, NetworkLink


class TestIAM:
    def test_create_and_authenticate(self):
        iam = IAM(seed=1)
        key = iam.create_api_key("alice")
        assert iam.authenticate(key.key_id, key.secret) == "alice"

    def test_unknown_key(self):
        with pytest.raises(AuthenticationError):
            IAM().authenticate("key-none", "secret")

    def test_bad_secret(self):
        iam = IAM(seed=2)
        key = iam.create_api_key("bob")
        with pytest.raises(AuthenticationError):
            iam.authenticate(key.key_id, "wrong")

    def test_revoked_key(self):
        iam = IAM(seed=3)
        key = iam.create_api_key("carol")
        iam.revoke(key.key_id)
        with pytest.raises(AuthenticationError):
            iam.authenticate(key.key_id, key.secret)

    def test_authorize_wrong_namespace(self):
        iam = IAM(seed=4)
        key = iam.create_api_key("alice")
        with pytest.raises(AuthorizationError, match="bound to namespace"):
            iam.authorize(key, "bob")

    def test_keys_unique(self):
        iam = IAM(seed=5)
        keys = {iam.create_api_key("ns").key_id for _ in range(50)}
        assert len(keys) == 50

    def test_empty_namespace_rejected(self):
        with pytest.raises(ValueError):
            IAM().create_api_key("")


class TestPlatformAuth:
    def make_platform(self, kernel):
        platform = CloudFunctions(kernel, CloudObjectStorage(kernel), seed=6)

        def echo(params, ctx):
            return params

        platform.create_action("alice", "echo", echo)
        return platform

    def test_auth_off_by_default(self, kernel):
        platform = self.make_platform(kernel)

        def main():
            aid = platform.invoke("alice", "echo", {"x": 1})
            return platform.wait_activation(aid).status

        assert kernel.run(main) == "success"

    def test_require_auth_rejects_anonymous(self, kernel):
        platform = self.make_platform(kernel)
        platform.require_auth = True

        def main():
            with pytest.raises(AuthenticationError):
                platform.invoke("alice", "echo", {})
            return True

        assert kernel.run(main)

    def test_authorized_key_accepted(self, kernel):
        platform = self.make_platform(kernel)
        platform.require_auth = True
        key = platform.iam.create_api_key("alice")

        def main():
            aid = platform.invoke("alice", "echo", {"x": 1}, credentials=key)
            return platform.wait_activation(aid).result

        assert kernel.run(main) == {"x": 1}

    def test_cross_namespace_key_rejected(self, kernel):
        platform = self.make_platform(kernel)
        platform.require_auth = True
        mallory = platform.iam.create_api_key("mallory")

        def main():
            with pytest.raises(AuthorizationError):
                platform.invoke("alice", "echo", {}, credentials=mallory)
            return True

        assert kernel.run(main)

    def test_gateway_sends_credentials(self, kernel):
        platform = self.make_platform(kernel)
        platform.require_auth = True
        key = platform.iam.create_api_key("alice")

        def main():
            link = NetworkLink(kernel, LatencyModel.lan(), seed=1)
            client = CloudFunctionsClient(platform, link, credentials=key)
            record = client.invoke_blocking("alice", "echo", {"v": 9})
            return record.result

        assert kernel.run(main) == {"v": 9}


class TestPerNamespaceConcurrency:
    def test_one_tenant_cannot_starve_another(self, kernel):
        limits = SystemLimits(max_concurrent=2)
        platform = CloudFunctions(
            kernel, CloudObjectStorage(kernel), limits=limits, seed=7
        )

        def slow(params, ctx):
            ctx.sleep(100)

        platform.create_action("alice", "slow", slow)
        platform.create_action("bob", "slow", slow)

        def main():
            platform.invoke("alice", "slow", {})
            platform.invoke("alice", "slow", {})
            with pytest.raises(ThrottledError):
                platform.invoke("alice", "slow", {})
            # bob's namespace has its own budget
            platform.invoke("bob", "slow", {})
            platform.invoke("bob", "slow", {})
            return (
                platform.active_in("alice"),
                platform.active_in("bob"),
                platform.active_count,
            )

        assert kernel.run(main) == (2, 2, 4)

    def test_slots_return_per_namespace(self, kernel):
        limits = SystemLimits(max_concurrent=1)
        platform = CloudFunctions(
            kernel, CloudObjectStorage(kernel), limits=limits, seed=8
        )

        def quick(params, ctx):
            ctx.sleep(1)

        platform.create_action("alice", "quick", quick)

        def main():
            first = platform.invoke("alice", "quick", {})
            platform.wait_activation(first)
            second = platform.invoke("alice", "quick", {})
            platform.wait_activation(second)
            return platform.active_in("alice")

        assert kernel.run(main) == 0
