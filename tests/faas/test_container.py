"""Unit tests for container objects and their pool lifecycle."""

from __future__ import annotations

import pytest

from repro.faas.action import Action
from repro.faas.container import Container
from repro.faas.invoker_node import InvokerNode


def make_action(name="fn", memory=256):
    return Action(
        namespace="guest",
        name=name,
        handler=lambda p, c: None,
        runtime="python-jessie:3",
        memory_mb=memory,
        timeout_s=600,
    )


class TestContainer:
    def test_new_container_is_busy(self):
        c = Container("guest/fn", "python-jessie:3", 256, created=1.0, invoker_id=0)
        assert c.state == Container.BUSY
        assert c.created == 1.0
        assert c.activations_served == 0

    def test_ids_unique(self):
        a = Container("guest/fn", "r", 256, 0.0, 0)
        b = Container("guest/fn", "r", 256, 0.0, 0)
        assert a.container_id != b.container_id
        assert a.container_id.startswith("wsk-cont-")


class TestLifecycle:
    def test_serve_count_increments_on_release(self):
        node = InvokerNode(0, 1024, warm_idle_ttl=600)
        action = make_action()
        placement = node.try_place(action, 0.0)
        node.release(placement.container, 1.0)
        reused = node.try_place(action, 2.0)
        node.release(reused.container, 3.0)
        assert reused.container.activations_served == 2

    def test_discard_frees_memory_and_stops(self):
        node = InvokerNode(0, 512, warm_idle_ttl=600)
        placement = node.try_place(make_action(memory=512), 0.0)
        assert node.free_mb == 0
        node.discard(placement.container)
        assert node.free_mb == 512
        assert placement.container.state == Container.STOPPED

    def test_discarded_container_not_in_warm_pool(self):
        node = InvokerNode(0, 512, warm_idle_ttl=600)
        action = make_action(memory=512)
        placement = node.try_place(action, 0.0)
        node.discard(placement.container)
        fresh = node.try_place(action, 1.0)
        assert fresh.cold
        assert fresh.container is not placement.container

    def test_load_fraction(self):
        node = InvokerNode(0, 1024, warm_idle_ttl=600)
        assert node.load_fraction() == 0.0
        node.try_place(make_action(memory=512), 0.0)
        assert node.load_fraction() == pytest.approx(0.5)

    def test_warm_pool_lifo_reuse(self):
        """The most recently used container is reused first (cache warmth)."""
        node = InvokerNode(0, 1024, warm_idle_ttl=600)
        action = make_action()
        a = node.try_place(action, 0.0).container
        b = node.try_place(action, 0.0).container
        node.release(a, 1.0)
        node.release(b, 2.0)
        reused = node.try_place_warm(action, 3.0)
        assert reused.container is b
