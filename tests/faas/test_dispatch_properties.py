"""Property-based tests pinning the fair-dispatch queue's contract.

The weighted-fair dispatcher is the heart of the multi-tenant control
plane, so its fairness guarantees are pinned directly on the pure
structure (:class:`repro.faas.dispatch.FairDispatchQueue`) rather than
eyeballed from benches:

* **work-conserving** — ``pop()`` yields an item whenever anything is
  queued, regardless of weights or costs;
* **weight-proportional** — under sustained backlog, per-tenant service
  is proportional to weight within one quantum-and-a-maximum-cost bound
  (the classic DRR deficit bound);
* **per-tenant FIFO** — a tenant's items dispatch in push order under
  both policies;
* **deterministic** — the dispatch order is a pure function of the push
  sequence and the weights (same input, byte-same order).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas.dispatch import POLICIES, FairDispatchQueue

# a workload: per-tenant weights plus an interleaved push sequence
tenant_ids = st.integers(min_value=0, max_value=4)
weights = st.lists(
    st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    min_size=5,
    max_size=5,
)
push_sequences = st.lists(
    st.tuples(
        tenant_ids,
        st.floats(min_value=0.5, max_value=4.0, allow_nan=False),  # cost
    ),
    min_size=1,
    max_size=60,
)


def _drain(queue: FairDispatchQueue) -> list[tuple[str, int, float]]:
    out = []
    while True:
        popped = queue.pop()
        if popped is None:
            return out
        out.append(popped)


def _build(policy: str, weight_list, pushes) -> FairDispatchQueue:
    queue = FairDispatchQueue(policy=policy)
    for index, weight in enumerate(weight_list):
        queue.set_weight(f"t{index}", weight)
    for serial, (tenant, cost) in enumerate(pushes):
        queue.push(f"t{tenant}", serial, cost=cost)
    return queue


class TestWorkConserving:
    @settings(max_examples=60, deadline=None)
    @given(weight_list=weights, pushes=push_sequences)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_pop_never_idles_while_backlogged(
        self, policy, weight_list, pushes
    ):
        """Every queued item is eventually dispatched, and pop() returns
        an item at every call until the structure is empty."""
        queue = _build(policy, weight_list, pushes)
        for remaining in range(len(pushes), 0, -1):
            assert len(queue) == remaining
            assert queue.pop() is not None, (
                "pop() returned None with items still queued"
            )
        assert len(queue) == 0
        assert queue.pop() is None

    def test_pop_on_empty_is_none(self):
        queue = FairDispatchQueue()
        assert queue.pop() is None
        queue.push("a", "x")
        assert queue.pop() == ("a", "x", 1.0)
        assert queue.pop() is None


class TestPerTenantFifo:
    @settings(max_examples=60, deadline=None)
    @given(weight_list=weights, pushes=push_sequences)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_fifo_within_tenant(self, policy, weight_list, pushes):
        """Whatever the cross-tenant interleaving, one tenant's items come
        out in push order (items are their push serials)."""
        queue = _build(policy, weight_list, pushes)
        seen: dict[str, list[int]] = {}
        for tenant, serial, _cost in _drain(queue):
            seen.setdefault(tenant, []).append(serial)
        for tenant, serials in seen.items():
            assert serials == sorted(serials), (
                f"tenant {tenant} dispatched out of push order: {serials}"
            )

    def test_fifo_policy_is_global_arrival_order(self):
        queue = FairDispatchQueue(policy="fifo")
        queue.set_weight("a", 100.0)  # weights must not matter under fifo
        for serial, tenant in enumerate(["a", "b", "a", "c", "b", "a"]):
            queue.push(tenant, serial)
        assert [item for _t, item, _c in _drain(queue)] == [0, 1, 2, 3, 4, 5]


class TestWeightProportionalShares:
    @settings(max_examples=40, deadline=None)
    @given(weight_list=weights)
    def test_service_tracks_weights_within_deficit_bound(self, weight_list):
        """Under a saturated backlog of unit-cost items, the cost served
        per tenant after any prefix of pops stays within one quantum *
        weight + max_cost of its weight-proportional share (the DRR
        deficit bound of Shreedhar & Varghese)."""
        queue = FairDispatchQueue(policy="drr", quantum=1.0)
        depth = 200
        names = [f"t{i}" for i in range(len(weight_list))]
        for name, weight in zip(names, weight_list):
            queue.set_weight(name, weight)
        for serial in range(depth):
            for name in names:
                queue.push(name, serial)
        total_weight = sum(weight_list)
        served = {name: 0.0 for name in names}
        total_served = 0.0
        # the share law only holds while every tenant is backlogged: once
        # one drains, the others legitimately absorb its share
        while all(queue.pending(name) > 0 for name in names):
            tenant, _item, cost = queue.pop()
            served[tenant] += cost
            total_served += cost
            for name, weight in zip(names, weight_list):
                ideal = total_served * weight / total_weight
                # DRR deficit bound: each tenant's service lags/leads its
                # share by at most one visit's credit plus one max item,
                # on both its own counter and the total it is compared to
                slack = queue.quantum * weight + 1.0
                bound = slack + (weight / total_weight) * (
                    queue.quantum * total_weight + len(names) * 1.0
                )
                assert abs(served[name] - ideal) <= bound + 1e-9, (
                    f"{name} served {served[name]:.1f}, ideal {ideal:.1f}, "
                    f"bound {bound:.1f}"
                )

    def test_two_to_one_weights_give_two_to_one_service(self):
        queue = FairDispatchQueue(policy="drr", quantum=1.0)
        queue.set_weight("heavy", 2.0)
        queue.set_weight("light", 1.0)
        for serial in range(300):
            queue.push("heavy", serial)
            queue.push("light", serial)
        served = {"heavy": 0, "light": 0}
        for _ in range(300):
            tenant, _item, _cost = queue.pop()
            served[tenant] += 1
        ratio = served["heavy"] / served["light"]
        assert 1.8 <= ratio <= 2.2, served


class TestDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(weight_list=weights, pushes=push_sequences)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_same_input_same_dispatch_order(self, policy, weight_list, pushes):
        first = _drain(_build(policy, weight_list, pushes))
        second = _drain(_build(policy, weight_list, pushes))
        assert first == second

    def test_idle_tenant_forfeits_credit(self):
        """A tenant that drains to empty re-joins with zero deficit: no
        banking capacity while idle."""
        queue = FairDispatchQueue(policy="drr", quantum=1.0)
        queue.set_weight("a", 4.0)
        queue.push("a", "a0", cost=1.0)
        assert queue.pop()[1] == "a0"
        # 'a' went idle; its accumulated credit must be gone
        queue.push("b", "b0", cost=1.0)
        queue.push("a", "a1", cost=3.0)
        # b (head of rotation) earns 1.0 and dispatches; a needs 3 rounds
        # of weight-4 credit *starting from zero*, not from leftover
        assert queue.pop()[0] == "b"
        tenant, item, _ = queue.pop()
        assert (tenant, item) == ("a", "a1")
        assert queue._deficit["a"] < 4.0 + 1e-9


class TestValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            FairDispatchQueue(policy="lifo")

    def test_bad_quantum_and_weight_and_cost_rejected(self):
        queue = FairDispatchQueue()
        with pytest.raises(ValueError):
            FairDispatchQueue(quantum=0)
        with pytest.raises(ValueError):
            queue.set_weight("a", 0)
        with pytest.raises(ValueError):
            queue.push("a", "x", cost=0)

    def test_stats_and_introspection(self):
        queue = FairDispatchQueue()
        queue.push("a", 1)
        queue.push("b", 2)
        queue.push("a", 3)
        assert queue.pending("a") == 2
        assert queue.backlogged_tenants() == ["a", "b"]
        assert queue.stats() == {"pushed": 3, "popped": 0, "pending": 3}
        queue.pop()
        assert queue.stats()["popped"] == 1
