"""Unit tests for platform limits (§3)."""

from __future__ import annotations

import pytest

from repro.faas import SystemLimits


class TestDefaults:
    def test_paper_defaults(self):
        """§3: 600 s execution, 512 MB RAM cap, 1,000 concurrent."""
        limits = SystemLimits()
        assert limits.max_exec_seconds == 600.0
        assert limits.max_memory_mb == 512
        assert limits.max_concurrent == 1000

    def test_defaults_validate(self):
        SystemLimits().validate()

    def test_cluster_capacity_covers_concurrency(self):
        limits = SystemLimits()
        assert limits.cluster_capacity >= limits.max_concurrent


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_exec_seconds": 0},
            {"max_exec_seconds": -1},
            {"default_memory_mb": 0},
            {"default_memory_mb": 1024},  # above max_memory_mb
            {"max_concurrent": 0},
            {"invoker_count": 0},
            {"invoker_memory_mb": 0},
        ],
    )
    def test_invalid_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SystemLimits(**kwargs).validate()

    def test_raised_concurrency_allowed(self):
        """'the number of concurrent functions can be increased if needed'"""
        SystemLimits(max_concurrent=5000).validate()
