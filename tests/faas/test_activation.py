"""Unit tests for activation records and namespaces/actions."""

from __future__ import annotations

import pytest

from repro.faas.action import Action, Namespace
from repro.faas.activation import ActivationRecord, ActivationStatus
from repro.faas.errors import ActionNotFound


def make_record(**kwargs) -> ActivationRecord:
    defaults = dict(
        activation_id="act-1",
        namespace="guest",
        action_name="fn",
        submit_time=10.0,
    )
    defaults.update(kwargs)
    return ActivationRecord(**defaults)


class TestActivationRecord:
    def test_unfinished_properties(self):
        record = make_record()
        assert not record.finished
        assert record.wait_time is None
        assert record.duration is None

    def test_wait_time_and_duration(self):
        record = make_record(start_time=12.0, end_time=30.0)
        assert record.wait_time == pytest.approx(2.0)
        assert record.duration == pytest.approx(18.0)

    def test_interval_requires_finish(self):
        with pytest.raises(ValueError):
            make_record().interval()
        assert make_record(start_time=1.0, end_time=2.0).interval() == (1.0, 2.0)

    def test_status_constants(self):
        assert set(ActivationStatus.ALL) == {"success", "error", "timeout"}

    def test_logs_default_independent(self):
        a, b = make_record(), make_record(activation_id="act-2")
        a.logs.append((0.0, "x"))
        assert b.logs == []


class TestNamespace:
    def make_action(self, name="fn"):
        return Action(
            namespace="guest",
            name=name,
            handler=lambda p, c: None,
            runtime="python-jessie:3",
            memory_mb=256,
            timeout_s=600,
        )

    def test_put_get(self):
        ns = Namespace("guest")
        action = self.make_action()
        ns.put(action)
        assert ns.get("fn") is action

    def test_get_missing(self):
        ns = Namespace("guest")
        with pytest.raises(ActionNotFound, match="guest/ghost"):
            ns.get("ghost")

    def test_delete(self):
        ns = Namespace("guest")
        ns.put(self.make_action())
        ns.delete("fn")
        with pytest.raises(ActionNotFound):
            ns.get("fn")

    def test_delete_missing(self):
        with pytest.raises(ActionNotFound):
            Namespace("guest").delete("nope")

    def test_put_replaces(self):
        ns = Namespace("guest")
        first = self.make_action()
        second = self.make_action()
        ns.put(first)
        ns.put(second)
        assert ns.get("fn") is second

    def test_fqn(self):
        assert self.make_action().fqn == "guest/fn"
