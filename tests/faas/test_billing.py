"""Tests for sub-second billing metering."""

from __future__ import annotations

import pytest

import repro as pw
from repro.faas.billing import (
    PRICE_PER_GB_SECOND,
    BillingEntry,
    BillingMeter,
    billed_duration,
)


class TestBilledDuration:
    @pytest.mark.parametrize(
        "duration,expected",
        [
            (0.0, 0.1),
            (0.01, 0.1),
            (0.1, 0.1),
            (0.15, 0.2),
            (1.0, 1.0),
            (59.99, 60.0),
        ],
    )
    def test_rounds_up_to_100ms(self, duration, expected):
        assert billed_duration(duration) == pytest.approx(expected)

    def test_negative_clamped_to_minimum(self):
        assert billed_duration(-5) == 0.1


class TestEntry:
    def test_gb_seconds(self):
        entry = BillingEntry("act-1", "fn", memory_mb=512, duration_s=10.0)
        assert entry.gb_seconds == pytest.approx(5.0)

    def test_cost(self):
        entry = BillingEntry("act-1", "fn", memory_mb=1024, duration_s=100.0)
        assert entry.cost == pytest.approx(100.0 * PRICE_PER_GB_SECOND)


class TestMeter:
    def test_aggregation(self):
        meter = BillingMeter()
        meter.record("a1", "map_fn", 256, 4.0)
        meter.record("a2", "map_fn", 256, 4.0)
        meter.record("a3", "reduce_fn", 512, 2.0)
        assert meter.activations == 3
        assert meter.total_gb_seconds() == pytest.approx(1.0 + 1.0 + 1.0)
        by_action = meter.by_action()
        assert by_action["map_fn"] == pytest.approx(2.0)
        assert by_action["reduce_fn"] == pytest.approx(1.0)

    def test_empty_meter(self):
        meter = BillingMeter()
        assert meter.total_cost() == 0.0
        assert meter.by_action() == {}


class TestPlatformIntegration:
    def test_every_activation_metered(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def busy(x):
                pw.sleep(10)
                return x

            executor.get_result(executor.map(busy, [1, 2, 3]))
            return env.platform.billing.activations, env.platform.billing.total_gb_seconds()

        activations, gbs = env.run(main)
        assert activations == 3
        # 3 functions x ~10 s x 256 MB = ~7.5 GB-s
        assert gbs == pytest.approx(7.5, rel=0.05)

    def test_parallel_speedup_costs_roughly_the_same_compute(self, cloud):
        """Serverless economics: 10 functions x 10 s bill like 1 x 100 s."""

        def run(n, seconds):
            env = cloud(seed=n)

            def main():
                executor = pw.ibm_cf_executor()

                def busy(_):
                    pw.sleep(seconds)

                executor.get_result(executor.map(busy, [0] * n))
                return env.platform.billing.total_gb_seconds()

            return env.run(main)

        assert run(10, 10.0) == pytest.approx(run(1, 100.0), rel=0.05)
