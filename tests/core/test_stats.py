"""Tests for job execution statistics."""

from __future__ import annotations

import pytest

import repro as pw
from repro.core.stats import (
    CallRecord,
    JobStats,
    _percentile,
    collect_job_stats,
    stats_from_call_records,
)


class _StubFuture:
    """Minimal future: a fixed status dict plus an invoke count."""

    def __init__(self, start, end, success, invoke_count=1):
        self._status = {"start_time": start, "end_time": end, "success": success}
        self.invoke_count = invoke_count

    def status(self):
        return self._status


class TestCollect:
    def test_stats_from_real_job(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def busy(i):
                pw.sleep(10 + i * 2)
                return i

            futures = executor.map(busy, list(range(5)))
            executor.get_result(futures)
            return collect_job_stats(futures)

        stats = env.run(main)
        assert stats.n_calls == 5
        assert stats.max_duration >= 18.0
        assert stats.mean_duration == pytest.approx(14.0, abs=1.0)
        assert stats.p50_duration <= stats.p95_duration <= stats.max_duration
        assert stats.makespan >= stats.max_duration
        assert stats.spawn_spread >= 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            collect_job_stats([])

    def test_straggler_ratio(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def maybe_slow(i):
                pw.sleep(100 if i == 0 else 10)
                return i

            futures = executor.map(maybe_slow, list(range(6)))
            executor.get_result(futures)
            return collect_job_stats(futures)

        stats = env.run(main)
        assert stats.straggler_ratio == pytest.approx(10.0, rel=0.1)

    def test_even_job_ratio_near_one(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def even(_):
                pw.sleep(20)

            futures = executor.map(even, [0] * 4)
            executor.get_result(futures)
            return collect_job_stats(futures)

        stats = env.run(main)
        assert stats.straggler_ratio == pytest.approx(1.0, abs=0.05)

    def test_spawn_spread_reflects_invocation_ramp(self, cloud):
        """A 1-thread invoker pool stretches the ramp; stats expose it."""
        narrow_env = cloud(seed=31)

        def main_narrow():
            executor = pw.ibm_cf_executor(invoker_pool_size=1)
            futures = executor.map(lambda x: x, list(range(10)))
            executor.get_result(futures)
            return collect_job_stats(futures).spawn_spread

        wide_env = cloud(seed=31)

        def main_wide():
            executor = pw.ibm_cf_executor(invoker_pool_size=10)
            futures = executor.map(lambda x: x, list(range(10)))
            executor.get_result(futures)
            return collect_job_stats(futures).spawn_spread

        assert narrow_env.run(main_narrow) > wide_env.run(main_wide)


class TestPercentile:
    """Pin the linear-interpolation semantics to exact values."""

    def test_interpolates_between_ranks(self):
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.95) == pytest.approx(3.85)
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_exact_rank_needs_no_interpolation(self):
        assert _percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_extremes(self):
        values = [10.0, 20.0, 30.0]
        assert _percentile(values, 0.0) == 10.0
        assert _percentile(values, 1.0) == 30.0

    def test_degenerate_inputs(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([7.0], 0.95) == 7.0

    def test_job_percentiles_use_interpolation(self):
        records = [CallRecord(start=0.0, end=float(d), success=True) for d in (1, 2, 3, 4)]
        stats = stats_from_call_records(records)
        assert stats.p50_duration == pytest.approx(2.5)
        assert stats.p95_duration == pytest.approx(3.85)


class TestEdgeCases:
    """collect_job_stats over buried / mixed / retried futures."""

    def test_all_buried(self):
        futures = [_StubFuture(None, None, False) for _ in range(3)]
        stats = collect_job_stats(futures)
        assert stats.n_calls == 3
        assert stats.failed_calls == 3
        assert stats.makespan == 0.0
        assert stats.mean_duration == 0.0
        assert stats.straggler_ratio == 1.0

    def test_mixed_buried_and_successful(self):
        futures = [
            _StubFuture(0.0, 10.0, True),
            _StubFuture(2.0, 6.0, True),
            _StubFuture(None, None, False),  # buried: no timestamps
        ]
        stats = collect_job_stats(futures)
        assert stats.n_calls == 3
        assert stats.failed_calls == 1
        # timing aggregates come from the calls that actually ran
        assert stats.first_start == 0.0
        assert stats.last_start == 2.0
        assert stats.last_end == 10.0
        assert stats.mean_duration == pytest.approx(7.0)

    def test_retries_counted_from_invoke_count(self):
        futures = [
            _StubFuture(0.0, 5.0, True, invoke_count=3),
            _StubFuture(0.0, 5.0, True, invoke_count=1),
            _StubFuture(0.0, 5.0, True, invoke_count=0),  # never marked: floor at 1
        ]
        stats = collect_job_stats(futures)
        assert stats.retries_total == 2
        assert stats.failed_calls == 0

    def test_failed_but_executed_call_keeps_timestamps(self):
        futures = [_StubFuture(1.0, 4.0, False)]
        stats = collect_job_stats(futures)
        assert stats.failed_calls == 1
        assert stats.max_duration == 3.0


class TestJobStatsProperties:
    def test_zero_median_guard(self):
        stats = JobStats(
            n_calls=1,
            first_start=0,
            last_start=0,
            last_end=0,
            mean_duration=0,
            p50_duration=0,
            p95_duration=0,
            max_duration=0,
        )
        assert stats.straggler_ratio == 1.0
