"""Tests for job execution statistics."""

from __future__ import annotations

import pytest

import repro as pw
from repro.core.stats import JobStats, collect_job_stats


class TestCollect:
    def test_stats_from_real_job(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def busy(i):
                pw.sleep(10 + i * 2)
                return i

            futures = executor.map(busy, list(range(5)))
            executor.get_result(futures)
            return collect_job_stats(futures)

        stats = env.run(main)
        assert stats.n_calls == 5
        assert stats.max_duration >= 18.0
        assert stats.mean_duration == pytest.approx(14.0, abs=1.0)
        assert stats.p50_duration <= stats.p95_duration <= stats.max_duration
        assert stats.makespan >= stats.max_duration
        assert stats.spawn_spread >= 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            collect_job_stats([])

    def test_straggler_ratio(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def maybe_slow(i):
                pw.sleep(100 if i == 0 else 10)
                return i

            futures = executor.map(maybe_slow, list(range(6)))
            executor.get_result(futures)
            return collect_job_stats(futures)

        stats = env.run(main)
        assert stats.straggler_ratio == pytest.approx(10.0, rel=0.1)

    def test_even_job_ratio_near_one(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def even(_):
                pw.sleep(20)

            futures = executor.map(even, [0] * 4)
            executor.get_result(futures)
            return collect_job_stats(futures)

        stats = env.run(main)
        assert stats.straggler_ratio == pytest.approx(1.0, abs=0.05)

    def test_spawn_spread_reflects_invocation_ramp(self, cloud):
        """A 1-thread invoker pool stretches the ramp; stats expose it."""
        narrow_env = cloud(seed=31)

        def main_narrow():
            executor = pw.ibm_cf_executor(invoker_pool_size=1)
            futures = executor.map(lambda x: x, list(range(10)))
            executor.get_result(futures)
            return collect_job_stats(futures).spawn_spread

        wide_env = cloud(seed=31)

        def main_wide():
            executor = pw.ibm_cf_executor(invoker_pool_size=10)
            futures = executor.map(lambda x: x, list(range(10)))
            executor.get_result(futures)
            return collect_job_stats(futures).spawn_spread

        assert narrow_env.run(main_narrow) > wide_env.run(main_wide)


class TestJobStatsProperties:
    def test_zero_median_guard(self):
        stats = JobStats(
            n_calls=1,
            first_start=0,
            last_start=0,
            last_end=0,
            mean_duration=0,
            p50_duration=0,
            p95_duration=0,
            max_duration=0,
        )
        assert stats.straggler_ratio == 1.0
