"""Tests for the three spawning strategies (§5.1)."""

from __future__ import annotations

import pytest

import repro as pw
from repro.config import InvokerMode
from repro.core.worker import REMOTE_INVOKER_ACTION


def noop(x):
    return x


def run_mode(env, mode, n=30, **overrides):
    """Returns (results, invocation_phase): time until the last function
    *started*, the metric §5.1/§6.1 compare across spawning mechanisms."""

    def main():
        executor = pw.ibm_cf_executor(invoker_mode=mode, **overrides)
        t0 = pw.now()
        futures = executor.map(noop, list(range(n)))
        results = executor.get_result(futures)
        runners = [
            r
            for r in env.platform.activations()
            if r.action_name.startswith("pywren_runner")
        ]
        invocation_phase = max(r.start_time for r in runners) - t0
        return results, invocation_phase

    return env.run(main)


class TestLocalInvoker:
    def test_correctness(self, cloud):
        results, _ = run_mode(cloud(), InvokerMode.LOCAL)
        assert results == list(range(30))

    def test_pool_size_bounds_invocation_parallelism(self, cloud):
        _, wide = run_mode(cloud(seed=5), InvokerMode.LOCAL, invoker_pool_size=30)
        _, narrow = run_mode(cloud(seed=5), InvokerMode.LOCAL, invoker_pool_size=1)
        assert wide < narrow

    def test_no_remote_invoker_deployed(self, cloud):
        env = cloud()
        run_mode(env, InvokerMode.LOCAL)
        assert REMOTE_INVOKER_ACTION not in env.platform.namespace("guest").list_actions()


class TestRemoteInvoker:
    def test_correctness(self, cloud):
        results, _ = run_mode(cloud(), InvokerMode.REMOTE)
        assert results == list(range(30))

    def test_single_invoker_activation(self, cloud):
        env = cloud()
        run_mode(env, InvokerMode.REMOTE)
        invokers = [
            r
            for r in env.platform.activations()
            if r.action_name == REMOTE_INVOKER_ACTION
        ]
        assert len(invokers) == 1

    def test_internal_pool_speeds_up_spawning(self, cloud):
        _, pooled = run_mode(
            cloud(seed=6), InvokerMode.REMOTE, remote_invoker_pool_size=8
        )
        _, serial = run_mode(
            cloud(seed=6), InvokerMode.REMOTE, remote_invoker_pool_size=1
        )
        assert pooled < serial


class TestMassiveInvoker:
    def test_correctness(self, cloud):
        results, _ = run_mode(cloud(), InvokerMode.MASSIVE)
        assert results == list(range(30))

    def test_group_count(self, cloud):
        env = cloud()
        run_mode(env, InvokerMode.MASSIVE, n=25, massive_group_size=10)
        invokers = [
            r
            for r in env.platform.activations()
            if r.action_name == REMOTE_INVOKER_ACTION
        ]
        assert len(invokers) == 3  # ceil(25/10)

    def test_massive_beats_local_over_wan(self, cloud):
        _, local = run_mode(cloud(seed=9), InvokerMode.LOCAL, n=200)
        _, massive = run_mode(cloud(seed=9), InvokerMode.MASSIVE, n=200)
        assert massive < local

    def test_faster_than_single_remote_for_large_jobs(self, cloud):
        # the advantage appears once there are more groups than the single
        # remote invoker's internal pool width (the paper used 1,000 calls)
        _, remote = run_mode(cloud(seed=10), InvokerMode.REMOTE, n=1000)
        _, massive = run_mode(cloud(seed=10), InvokerMode.MASSIVE, n=1000)
        assert massive < remote
