"""Unit tests for response futures and the wait() policies (§4.2).

These drive futures against a real internal storage, with completions
produced by background kernel tasks standing in for cloud functions.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import FunctionError, ResultTimeoutError
from repro.core.futures import (
    ALL_COMPLETED,
    ALWAYS,
    ANY_COMPLETED,
    CallState,
    ResponseFuture,
)
from repro.core.storage_client import InternalStorage
from repro.core.wait import wait
from repro.cos import CloudObjectStorage, COSClient
from repro.net import LatencyModel, NetworkLink


@pytest.fixture()
def storage(kernel) -> InternalStorage:
    store = CloudObjectStorage(kernel)
    store.create_bucket("internal")
    link = NetworkLink(kernel, LatencyModel(rtt=0.001, jitter=0.0), seed=4)
    return InternalStorage(COSClient(store, link), "internal")


def complete_call(storage, future, value=None, success=True, delay=0.0, error=None):
    """Background task: write result+status like the worker does."""
    kernel = storage.cos.link.kernel

    def _complete():
        if delay:
            kernel.sleep(delay)
        payload = value if success else (error, "remote traceback")
        storage.put_result(
            future.executor_id, future.callset_id, future.call_id, payload
        )
        storage.put_status(
            future.executor_id,
            future.callset_id,
            future.call_id,
            {
                "call_id": future.call_id,
                "success": success,
                "error": None if success else repr(error),
                "start_time": 0.0,
                "end_time": kernel.now(),
            },
        )

    return kernel.spawn(_complete, name=f"complete-{future.call_id}")


def make_future(storage, call_id="00000", callset="M000"):
    return ResponseFuture("exec-1", callset, call_id).bind(storage, poll_interval=0.5)


class TestResponseFuture:
    def test_result_blocks_until_available(self, kernel, storage):
        def main():
            future = make_future(storage)
            complete_call(storage, future, value=99, delay=5.0)
            return future.result(), kernel.now() >= 5.0

        assert kernel.run(main) == (99, True)

    def test_done_is_nonblocking(self, kernel, storage):
        def main():
            future = make_future(storage)
            before = future.done()
            complete_call(storage, future, value=1).join()
            after = future.done()
            return before, after

        assert kernel.run(main) == (False, True)

    def test_state_transitions(self, kernel, storage):
        def main():
            future = make_future(storage)
            assert future.state == CallState.NEW
            future.mark_invoked("act-1")
            assert future.state == CallState.INVOKED
            complete_call(storage, future, value=1).join()
            future.result()
            return future.state, future.activation_id

        assert kernel.run(main) == (CallState.SUCCESS, "act-1")

    def test_error_raises_function_error(self, kernel, storage):
        def main():
            future = make_future(storage)
            complete_call(
                storage, future, success=False, error=ValueError("inner")
            ).join()
            with pytest.raises(FunctionError) as info:
                future.result()
            return type(info.value.cause), info.value.remote_traceback

        cause_type, tb = kernel.run(main)
        assert cause_type is ValueError
        assert "remote traceback" in tb

    def test_error_swallowed_with_throw_except_false(self, kernel, storage):
        def main():
            future = make_future(storage)
            complete_call(
                storage, future, success=False, error=ValueError("x")
            ).join()
            return future.result(throw_except=False)

        assert kernel.run(main) is None

    def test_result_timeout(self, kernel, storage):
        def main():
            future = make_future(storage)
            with pytest.raises(ResultTimeoutError):
                future.result(timeout=3)
            return kernel.now()

        assert kernel.run(main) >= 3.0

    def test_result_cached_after_first_fetch(self, kernel, storage):
        def main():
            future = make_future(storage)
            complete_call(storage, future, value=[1, 2]).join()
            first = future.result()
            gets_before = storage.cos.store.get_count
            second = future.result()
            return first, second, storage.cos.store.get_count == gets_before

        first, second, cached = kernel.run(main)
        assert first == second == [1, 2]
        assert cached

    def test_unbound_future_raises(self, kernel, storage):
        def main():
            future = ResponseFuture("e", "c", "00000")
            with pytest.raises(RuntimeError, match="not bound"):
                future.result()
            return True

        assert kernel.run(main)

    def test_pickle_drops_storage_binding(self, storage):
        future = ResponseFuture("e", "c", "00001", metadata={"k": "v"})
        future.bind(storage)
        restored = pickle.loads(pickle.dumps(future))
        assert not restored.bound
        assert restored.call_id == "00001"
        assert restored.metadata == {"k": "v"}

    def test_status_contains_worker_fields(self, kernel, storage):
        def main():
            future = make_future(storage)
            complete_call(storage, future, value=0).join()
            return future.status()

        status = kernel.run(main)
        assert status["success"] is True
        assert "end_time" in status


class TestComposition:
    def test_nested_future_resolved(self, kernel, storage):
        def main():
            inner = make_future(storage, call_id="00001", callset="M001")
            outer = make_future(storage, call_id="00000", callset="M000")
            complete_call(storage, inner, value="deep").join()
            complete_call(storage, outer, value=inner).join()
            return outer.result()

        assert kernel.run(main) == "deep"

    def test_list_of_futures_resolved(self, kernel, storage):
        def main():
            inners = [
                make_future(storage, call_id=f"{i:05d}", callset="M001")
                for i in range(3)
            ]
            for i, future in enumerate(inners):
                complete_call(storage, future, value=i * 10).join()
            outer = make_future(storage, callset="M000")
            complete_call(storage, outer, value=inners).join()
            return outer.result()

        assert kernel.run(main) == [0, 10, 20]

    def test_plain_list_result_not_unwrapped(self, kernel, storage):
        def main():
            future = make_future(storage)
            complete_call(storage, future, value=[1, 2, 3]).join()
            return future.result()

        assert kernel.run(main) == [1, 2, 3]


class TestWait:
    def test_wait_always_returns_immediately(self, kernel, storage):
        def main():
            futures = [make_future(storage, call_id=f"{i:05d}") for i in range(3)]
            complete_call(storage, futures[0], value=1).join()
            done, not_done = wait(futures, storage, return_when=ALWAYS)
            return len(done), len(not_done), kernel.now()

        done, not_done, t = kernel.run(main)
        assert (done, not_done) == (1, 2)
        assert t < 1.0

    def test_wait_any_completed(self, kernel, storage):
        def main():
            futures = [make_future(storage, call_id=f"{i:05d}") for i in range(3)]
            complete_call(storage, futures[2], value=1, delay=4.0)
            done, not_done = wait(
                futures, storage, return_when=ANY_COMPLETED, poll_interval=0.5
            )
            return [f.call_id for f in done], len(not_done)

        done_ids, remaining = kernel.run(main)
        assert done_ids == ["00002"]
        assert remaining == 2

    def test_wait_all_completed(self, kernel, storage):
        def main():
            futures = [make_future(storage, call_id=f"{i:05d}") for i in range(4)]
            for i, future in enumerate(futures):
                complete_call(storage, future, value=i, delay=i + 1.0)
            done, not_done = wait(futures, storage, return_when=ALL_COMPLETED)
            return len(done), len(not_done), kernel.now() >= 4.0

        assert kernel.run(main) == (4, 0, True)

    def test_wait_timeout_raises(self, kernel, storage):
        def main():
            futures = [make_future(storage)]
            with pytest.raises(ResultTimeoutError):
                wait(futures, storage, timeout=2, poll_interval=0.5)
            return True

        assert kernel.run(main)

    def test_wait_empty_list(self, kernel, storage):
        def main():
            return wait([], storage)

        assert kernel.run(main) == ([], [])

    def test_wait_uses_one_list_per_callset_round(self, kernel, storage):
        def main():
            futures = [
                make_future(storage, call_id=f"{i:05d}", callset="M000")
                for i in range(50)
            ]
            for future in futures:
                complete_call(storage, future, value=0).join()
            before = storage.cos.link.requests
            wait(futures, storage, return_when=ALL_COMPLETED)
            return storage.cos.link.requests - before

        # one LIST request, not 50 HEADs
        assert kernel.run(main) <= 2

    def test_on_progress_callback(self, kernel, storage):
        calls = []

        def main():
            futures = [make_future(storage, call_id=f"{i:05d}") for i in range(2)]
            for i, f in enumerate(futures):
                complete_call(storage, f, value=0, delay=float(i)).join()
            wait(
                futures,
                storage,
                return_when=ALL_COMPLETED,
                on_progress=lambda d, t: calls.append((d, t)),
            )
            return calls

        calls = kernel.run(main)
        assert calls[-1] == (2, 2)
