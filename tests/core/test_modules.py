"""Tests for runtime package validation (§3.1's constraint)."""

from __future__ import annotations

import math

import pytest

import repro as pw
from repro.core.modules import (
    RuntimePackageError,
    missing_packages,
    referenced_modules,
    validate_runtime,
)
from repro.faas.runtime import RuntimeImage, RuntimeRegistry


def stripped_image() -> RuntimeImage:
    return RuntimeImage(name="bare:1", packages=frozenset())


class TestReferencedModules:
    def test_global_module_alias(self):
        import numpy as np

        def fn(x):
            return np.asarray(x)

        assert "numpy" in referenced_modules(fn)

    def test_stdlib_module(self):
        def fn(x):
            return math.sqrt(x)

        assert "math" in referenced_modules(fn)

    def test_inline_import(self):
        def fn(_):
            import numpy

            return numpy.zeros(1)

        assert "numpy" in referenced_modules(fn)

    def test_no_modules(self):
        def fn(x):
            return x + 1

        mods = referenced_modules(fn)
        assert "numpy" not in mods

    def test_transitive_through_helper(self):
        import numpy as np

        def helper(x):
            return np.sum(x)

        def fn(x):
            return helper(x)

        assert "numpy" in referenced_modules(fn)

    def test_closure_over_module(self):
        import numpy

        mod = numpy

        def fn(x):
            return mod.ones(x)

        assert "numpy" in referenced_modules(fn)


class TestValidation:
    def test_stdlib_always_allowed(self):
        def fn(x):
            return math.floor(x)

        validate_runtime(fn, stripped_image())  # no raise

    def test_repro_always_allowed(self):
        def fn(_):
            import repro

            return repro.now()

        validate_runtime(fn, stripped_image())

    def test_missing_package_flagged(self):
        import numpy as np

        def fn(x):
            return np.asarray(x)

        assert missing_packages(fn, stripped_image()) == ["numpy"]
        with pytest.raises(RuntimePackageError, match="numpy"):
            validate_runtime(fn, stripped_image())

    def test_default_runtime_carries_numpy(self):
        import numpy as np

        registry = RuntimeRegistry()

        def fn(x):
            return np.asarray(x)

        validate_runtime(fn, registry.get("python-jessie:3"))

    def test_error_suggests_custom_runtime(self):
        import numpy as np

        def fn(x):
            return np.asarray(x)

        with pytest.raises(RuntimePackageError, match="build_custom_runtime"):
            validate_runtime(fn, stripped_image())


class TestExecutorIntegration:
    def test_submit_fails_fast_on_missing_package(self, env):
        env.registry.publish(stripped_image())
        import numpy as np

        def main():
            executor = pw.ibm_cf_executor(runtime="bare:1")
            with pytest.raises(RuntimePackageError):
                executor.map(lambda x: np.asarray(x), [1])
            return True

        assert env.run(main)

    def test_custom_runtime_with_package_accepted(self, env):
        import numpy as np

        env.registry.publish(
            RuntimeImage(name="sci:1", packages=frozenset({"numpy"}))
        )

        def main():
            executor = pw.ibm_cf_executor(runtime="sci:1")
            future = executor.call_async(lambda x: float(np.sum(x)), [1, 2, 3])
            return future.result()

        assert env.run(main) == 6.0

    def test_validation_can_be_disabled(self, env):
        env.registry.publish(stripped_image())
        import numpy as np

        def main():
            executor = pw.ibm_cf_executor(
                runtime="bare:1", validate_runtime_packages=False
            )
            # client-side check skipped; in-process execution still works
            future = executor.call_async(lambda x: float(np.sum(x)), [1, 2])
            return future.result()

        assert env.run(main) == 3.0
