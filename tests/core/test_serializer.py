"""Unit tests for the function/data serializer."""

from __future__ import annotations

import math
import os.path

import pytest

from repro.core.serializer import (
    SerializationError,
    deserialize,
    is_importable_function,
    serialize,
)

MODULE_CONSTANT = 13


def module_level_fn(x):
    return x * MODULE_CONSTANT


def recursive_fact(n):
    return 1 if n <= 1 else n * recursive_fact(n - 1)


def roundtrip(obj):
    return deserialize(serialize(obj))


class TestDataRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            42,
            3.14,
            "text",
            b"bytes",
            [1, 2, [3, 4]],
            {"k": (1, 2)},
            {1, 2, 3},
            float("inf"),
        ],
    )
    def test_plain_values(self, value):
        assert roundtrip(value) == value

    def test_nested_structures(self):
        data = {"list": [1, {"deep": (2, [3])}], "none": None}
        assert roundtrip(data) == data

    def test_large_payload(self):
        data = list(range(100_000))
        assert roundtrip(data) == data


class TestFunctionRoundtrip:
    def test_lambda(self):
        assert roundtrip(lambda x: x + 7)(3) == 10

    def test_closure(self):
        def make(n):
            def add(x):
                return x + n

            return add

        assert roundtrip(make(5))(2) == 7

    def test_nested_closure_layers(self):
        def outer(a):
            def middle(b):
                def inner(c):
                    return a + b + c

                return inner

            return middle

        assert roundtrip(outer(1)(2))(3) == 6

    def test_defaults_and_kwdefaults(self):
        def fn(a, b=10, *, c=100):
            return a + b + c

        restored = roundtrip(fn)
        assert restored(1) == 111
        assert restored(1, 2, c=3) == 6

    def test_module_global_captured(self):
        restored = roundtrip(module_level_fn)
        assert restored(2) == 26

    def test_module_reference_reimported(self):
        def uses_math(x):
            return math.sqrt(x)

        assert roundtrip(uses_math)(25) == 5.0

    def test_recursive_function(self):
        assert roundtrip(recursive_fact)(5) == 120

    def test_function_with_attributes(self):
        def fn(x):
            return x

        fn.custom_attr = "hello"
        assert roundtrip(fn).custom_attr == "hello"

    def test_function_embedded_in_data(self):
        payload = {"fn": lambda v: v * 2, "arg": 21}
        restored = roundtrip(payload)
        assert restored["fn"](restored["arg"]) == 42

    def test_list_of_functions(self):
        fns = [lambda x: x + 1, lambda x: x * 2, lambda x: x - 3]
        restored = roundtrip(fns)
        assert [f(10) for f in restored] == [11, 20, 7]

    def test_function_returning_function(self):
        def outer():
            data = [1, 2, 3]

            def inner():
                return sum(data)

            return inner

        assert roundtrip(outer())() == 6


class TestImportableFunctions:
    def test_stdlib_function_by_reference(self):
        assert is_importable_function(os.path.join)
        assert roundtrip(os.path.join)("a", "b") == os.path.join("a", "b")

    def test_lambda_not_importable(self):
        assert not is_importable_function(lambda: None)

    def test_nested_not_importable(self):
        def nested():
            pass

        assert not is_importable_function(nested)

    def test_module_level_test_fn_importable(self):
        assert is_importable_function(module_level_fn)


class TestErrors:
    def test_unserializable_raises_serialization_error(self):
        import threading

        with pytest.raises(SerializationError):
            serialize(threading.Lock())

    def test_error_message_names_type(self):
        import threading

        with pytest.raises(SerializationError, match="lock"):
            serialize(threading.Lock())
