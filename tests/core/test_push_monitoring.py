"""Tests for the MQ push-monitoring transport in the executor."""

from __future__ import annotations

import pytest

import repro as pw
from repro.config import MonitoringTransport
from repro.core.errors import ResultTimeoutError
from repro.core.futures import ALWAYS, ANY_COMPLETED


def push_executor(**overrides):
    return pw.ibm_cf_executor(
        monitoring=MonitoringTransport.MQ_PUSH, **overrides
    )


class TestPushCorrectness:
    def test_map_results_identical_to_polling(self, env):
        def main():
            executor = push_executor()
            futures = executor.map(lambda x: x * 2, [1, 2, 3, 4])
            return executor.get_result(futures)

        assert env.run(main) == [2, 4, 6, 8]

    def test_statuses_published_to_queue(self, env):
        def main():
            executor = push_executor()
            executor.get_result(executor.map(lambda x: x, [1, 2, 3]))
            return env.broker.published, env.broker.consumed

        published, consumed = env.run(main)
        assert published == 3
        assert consumed == 3

    def test_wait_any_via_push(self, env):
        def main():
            executor = push_executor()

            def staggered(i):
                pw.sleep(float(i) * 20)
                return i

            futures = executor.map(staggered, [0, 1, 2])
            done, not_done = executor.wait(futures, return_when=ANY_COMPLETED)
            return len(done), len(not_done)

        done, not_done = env.run(main)
        assert done >= 1
        assert done + not_done == 3

    def test_wait_always_nonblocking(self, env):
        def main():
            executor = push_executor()

            def slow(_):
                pw.sleep(100)

            futures = executor.map(slow, [0, 0])
            t0 = pw.now()
            done, not_done = executor.wait(futures, return_when=ALWAYS)
            return len(done), len(not_done), pw.now() - t0

        done, not_done, elapsed = env.run(main)
        assert (done, not_done) == (0, 2)
        assert elapsed < 5.0

    def test_messages_for_other_callsets_buffered(self, env):
        def main():
            executor = push_executor()
            first = executor.map(lambda x: x, [1])
            second = executor.map(lambda x: x * 10, [2])
            # wait on the second job first: the first job's message must be
            # buffered, not lost
            r2 = executor.get_result(second)
            r1 = executor.get_result(first)
            return r1, r2

        assert env.run(main) == ([1], [20])

    def test_failures_reported_through_push(self, env):
        from repro.core.errors import FunctionError

        def main():
            executor = push_executor()

            def bad(_):
                raise ValueError("nope")

            futures = executor.map(bad, [0])
            executor.wait(futures)
            with pytest.raises(FunctionError):
                futures[0].result()
            return futures[0].state

        assert env.run(main) == "error"

    def test_timeout(self, env):
        def main():
            executor = push_executor()

            def forever(_):
                pw.sleep(10_000)

            executor.map(forever, [0])
            with pytest.raises(ResultTimeoutError):
                executor.wait(timeout=15)
            return True

        assert env.run(main)


class TestPushLatencyAdvantage:
    def test_push_beats_coarse_polling(self, cloud):
        """With a coarse poll interval, push monitoring returns results
        sooner — the transport's raison d'être."""

        def run(monitoring, seed):
            env = cloud(seed=seed)

            def main():
                executor = pw.ibm_cf_executor(
                    monitoring=monitoring, poll_interval=10.0
                )
                t0 = pw.now()
                executor.get_result(executor.map(lambda x: x, [1, 2, 3]))
                return pw.now() - t0

            return env.run(main)

        polling = run(MonitoringTransport.COS_POLLING, seed=61)
        push = run(MonitoringTransport.MQ_PUSH, seed=61)
        assert push < polling

    def test_push_skips_status_lists(self, cloud):
        env = cloud(seed=62)

        def main():
            executor = push_executor()
            lists_before = env.storage.get_count
            executor.get_result(executor.map(lambda x: x, [1] * 10))
            return True

        assert env.run(main)
        # statuses still land in COS (authoritative), but the *client*
        # discovered completion via the queue
        assert env.broker.consumed == 10
