"""Property tests for the shuffle plane's pure core (core/shuffle.py).

The shuffle's correctness rests on three local invariants:

* ``stable_key_hash`` is a pure function of the key's ``repr`` — identical
  across calls, processes, and ``PYTHONHASHSEED`` values (unlike builtin
  ``hash``), so every mapper routes a key to the same reducer;
* ``partition_pairs`` is a tiling: every emitted pair lands in exactly one
  of the R buckets (no loss, no duplication), in the bucket its key hash
  selects, preserving emission order within a bucket;
* ``merge_shuffle_results`` is order-independent over the disjoint
  per-reducer dicts, and loudly rejects overlap (exactly-once violated).
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shuffle import (
    merge_shuffle_results,
    partition_pairs,
    stable_key_hash,
)

#: hashable primitives sensible as shuffle keys (repr-stable)
_keys = st.one_of(
    st.text(max_size=8),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.tuples(st.text(max_size=4), st.integers(min_value=0, max_value=99)),
)
_pairs = st.lists(
    st.tuples(_keys, st.integers(min_value=-1000, max_value=1000)), max_size=80
)


class TestStableKeyHash:
    @given(key=_keys)
    def test_deterministic_across_calls(self, key):
        assert stable_key_hash(key) == stable_key_hash(key)

    @given(key=_keys)
    def test_depends_only_on_repr(self, key):
        assert stable_key_hash(key) == stable_key_hash(eval(repr(key)))

    def test_pinned_values(self):
        # frozen goldens: a drift here silently reshuffles every key
        assert stable_key_hash("the") == 2527348067058907186
        assert stable_key_hash(7) == 10310116547102381690
        assert stable_key_hash(("a", 1)) == 8389944528275121772

    @pytest.mark.parametrize("hashseed", ["0", "12345"])
    def test_stable_across_processes_and_hash_seeds(self, hashseed):
        # builtin hash() of str varies per process; stable_key_hash must not
        script = (
            "from repro.core.shuffle import stable_key_hash;"
            "print(stable_key_hash('the'), stable_key_hash(('a', 1)))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={
                "PYTHONPATH": str(
                    pathlib.Path(__file__).resolve().parents[2] / "src"
                ),
                "PYTHONHASHSEED": hashseed,
            },
        ).stdout.split()
        assert out == ["2527348067058907186", "8389944528275121772"]


class TestPartitionPairs:
    @settings(max_examples=60)
    @given(pairs=_pairs, n_reducers=st.integers(min_value=1, max_value=9))
    def test_tiling_is_exactly_once_and_gap_free(self, pairs, n_reducers):
        buckets = partition_pairs(pairs, n_reducers)
        assert len(buckets) == n_reducers
        flat = [pair for bucket in buckets for pair in bucket]
        assert sorted(map(repr, flat)) == sorted(map(repr, pairs))

    @settings(max_examples=60)
    @given(pairs=_pairs, n_reducers=st.integers(min_value=1, max_value=9))
    def test_assignment_matches_key_hash(self, pairs, n_reducers):
        buckets = partition_pairs(pairs, n_reducers)
        for index, bucket in enumerate(buckets):
            for key, _value in bucket:
                assert stable_key_hash(key) % n_reducers == index

    @given(pairs=_pairs)
    def test_single_reducer_preserves_order(self, pairs):
        (bucket,) = partition_pairs(pairs, 1)
        assert bucket == list(pairs)


class TestMergeShuffleResults:
    @settings(max_examples=60)
    @given(
        results=st.lists(
            st.dictionaries(_keys, st.integers(), max_size=6), max_size=5
        ),
        seed=st.randoms(use_true_random=False),
    )
    def test_order_independent_when_disjoint(self, results, seed):
        # rekey to force disjointness: prefix each key with its dict index
        disjoint = [
            {(i, key): value for key, value in result.items()}
            for i, result in enumerate(results)
        ]
        merged = merge_shuffle_results(disjoint)
        shuffled = list(disjoint)
        seed.shuffle(shuffled)
        assert merge_shuffle_results(shuffled) == merged
        assert len(merged) == sum(len(d) for d in disjoint)

    @given(key=_keys, a=st.integers(), b=st.integers())
    def test_overlap_raises(self, key, a, b):
        with pytest.raises(ValueError, match="more than one reducer"):
            merge_shuffle_results([{key: a}, {key: b}])
