"""Tests for client-side retry of failed calls."""

from __future__ import annotations

import pytest

import repro as pw
from repro.config import MonitoringTransport
from repro.core.errors import PyWrenError


class TestRetryFailed:
    def test_transient_failure_recovers_on_retry(self, env):
        # NB: the serializer ships functions *by value*, so in-process
        # globals are copied, not shared — the attempt marker must live in
        # the cloud (a COS object), like any real cross-invocation state.
        env.storage.create_bucket("markers")

        def flaky(x):
            from repro.core.context import require_context

            store = require_context().environment.storage
            if x == 2 and not store.object_exists("markers", "tried"):
                store.put_object("markers", "tried", b"1")
                raise RuntimeError("transient")
            return x * 10

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(flaky, [1, 2, 3])
            executor.wait(futures)
            retried = executor.retry_failed(futures)
            assert len(retried) == 1
            assert retried[0].call_id == futures[1].call_id
            executor.wait(futures)
            return executor.get_result(futures)

        assert env.run(main) == [10, 20, 30]

    def test_no_failures_noop(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x, [1, 2])
            executor.wait(futures)
            return executor.retry_failed(futures)

        assert env.run(main) == []

    def test_persistent_failure_stays_failed(self, env):
        from repro.core.errors import FunctionError

        def main():
            executor = pw.ibm_cf_executor()

            def always_bad(_):
                raise ValueError("permanent")

            futures = executor.map(always_bad, [0])
            executor.wait(futures)
            executor.retry_failed(futures)
            executor.wait(futures)
            with pytest.raises(FunctionError):
                futures[0].result()
            return futures[0].state

        assert env.run(main) == "error"

    def test_foreign_future_rejected(self, env):
        from repro.core.futures import ResponseFuture

        def main():
            executor = pw.ibm_cf_executor()
            executor.get_result(executor.map(lambda x: x, [1]))
            foreign = ResponseFuture("exec-x", "M000", "00000")
            foreign.bind(executor._storage)
            foreign._status = {"success": False}
            with pytest.raises(PyWrenError, match="cannot retry"):
                executor.retry_failed([foreign])
            return True

        assert env.run(main)

    def test_retry_under_push_monitoring(self, env):
        env.storage.create_bucket("markers")

        def flaky(_):
            from repro.core.context import require_context

            store = require_context().environment.storage
            if not store.object_exists("markers", "push-tried"):
                store.put_object("markers", "push-tried", b"1")
                raise RuntimeError("first attempt fails")
            return "ok"

        def main():
            executor = pw.ibm_cf_executor(
                monitoring=MonitoringTransport.MQ_PUSH
            )
            futures = executor.map(flaky, [0])
            executor.wait(futures)
            retried = executor.retry_failed(futures)
            assert len(retried) == 1
            executor.wait(futures)
            return futures[0].result()

        assert env.run(main) == "ok"


class TestConfigFiles:
    def test_roundtrip(self, tmp_path):
        from repro.config import PyWrenConfig

        config = PyWrenConfig(runtime="me/custom:1", invoker_mode="massive")
        path = tmp_path / "pywren_config.json"
        config.save(path)
        loaded = PyWrenConfig.from_file(path)
        assert loaded == config

    def test_unknown_keys_rejected(self):
        from repro.config import PyWrenConfig

        with pytest.raises(ValueError, match="unknown config keys"):
            PyWrenConfig.from_dict({"not_a_key": 1})

    def test_invalid_json(self, tmp_path):
        from repro.config import PyWrenConfig

        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            PyWrenConfig.from_file(path)

    def test_non_object_json(self, tmp_path):
        from repro.config import PyWrenConfig

        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            PyWrenConfig.from_file(path)

    def test_loaded_config_validated(self, tmp_path):
        from repro.config import PyWrenConfig

        path = tmp_path / "cfg.json"
        path.write_text('{"invoker_mode": "bogus"}')
        with pytest.raises(ValueError):
            PyWrenConfig.from_file(path)

    def test_environment_accepts_loaded_config(self, tmp_path):
        from repro.config import PyWrenConfig
        from repro.core.environment import CloudEnvironment

        path = tmp_path / "cfg.json"
        PyWrenConfig(poll_interval=0.25).save(path)
        env = CloudEnvironment.create(config=PyWrenConfig.from_file(path))

        def main():
            executor = pw.ibm_cf_executor()
            assert executor.config.poll_interval == 0.25
            return executor.call_async(lambda x: x, 5).result()

        assert env.run(main) == 5
