"""Unit tests driving the runner and remote-invoker handlers directly."""

from __future__ import annotations

import pytest

from repro.core import serializer
from repro.core.storage_client import InternalStorage
from repro.core.worker import (
    REMOTE_INVOKER_ACTION,
    remote_invoker_handler,
    runner_action_name,
    runner_handler,
)
from repro.cos import CloudObjectStorage
from repro.faas import CloudFunctions


class TestActionNames:
    def test_runner_name_stable_and_sanitized(self):
        name = runner_action_name("python-jessie:3", 256)
        assert name == "pywren_runner__python-jessie-3__256mb"

    def test_slash_sanitized(self):
        assert "/" not in runner_action_name("team/custom:1", 512)

    def test_different_memory_different_action(self):
        assert runner_action_name("r:1", 256) != runner_action_name("r:1", 512)


def setup_platform(kernel):
    """A platform with the runner deployed and a submitted call in COS."""
    from repro.core.environment import CloudEnvironment

    env = CloudEnvironment.create(kernel=kernel, seed=77)
    storage = env.internal_storage_in_cloud()
    return env, storage


class TestRunnerHandler:
    def _submit_raw(self, env, storage, fn, data):
        """Hand-write func/data objects like the client would."""
        storage.put_func("e-test", "M000", serializer.serialize(fn))
        blob = serializer.serialize(data)
        storage.put_agg_data("e-test", "M000", blob)
        return {
            "executor_id": "e-test",
            "callset_id": "M000",
            "call_id": "00000",
            "bucket": env.config.storage_bucket,
            "prefix": env.config.storage_prefix,
            "data_range": [0, len(blob)],
        }

    def test_executes_and_stores_result(self, kernel):
        env, storage = setup_platform(kernel)
        params_holder = {}

        def main():
            params = self._submit_raw(env, storage, lambda x: x + 5, 37)
            env.platform.create_action("guest", "runner", runner_handler)
            record = env.platform.wait_activation(
                env.platform.invoke("guest", "runner", params)
            )
            assert record.result == {"call_id": "00000", "success": True}
            assert storage.get_status("e-test", "M000", "00000")["success"]
            return storage.get_result("e-test", "M000", "00000")

        assert env.kernel.run(main) == 42

    def test_status_includes_execution_metadata(self, kernel):
        env, storage = setup_platform(kernel)

        def main():
            params = self._submit_raw(env, storage, lambda x: x, 0)
            env.platform.create_action("guest", "runner", runner_handler)
            env.platform.wait_activation(
                env.platform.invoke("guest", "runner", params)
            )
            return storage.get_status("e-test", "M000", "00000")

        status = env.kernel.run(main)
        assert status["activation_id"].startswith("act-")
        assert status["container_id"].startswith("wsk-cont-")
        assert status["end_time"] >= status["start_time"]
        assert status["cold_start"] is True

    def test_user_exception_stored_not_raised(self, kernel):
        env, storage = setup_platform(kernel)

        def boom(_):
            raise KeyError("inner")

        def main():
            params = self._submit_raw(env, storage, boom, None)
            env.platform.create_action("guest", "runner", runner_handler)
            record = env.platform.wait_activation(
                env.platform.invoke("guest", "runner", params)
            )
            # the *activation* succeeded; the user error is data
            assert record.status == "success"
            assert record.result == {"call_id": "00000", "success": False}
            status = storage.get_status("e-test", "M000", "00000")
            cause, tb = storage.get_result("e-test", "M000", "00000")
            return status["success"], type(cause), tb

        success, cause_type, tb = env.kernel.run(main)
        assert success is False
        assert cause_type is KeyError
        assert "inner" in tb


class TestRemoteInvokerHandler:
    def test_sequential_group_invokes_all(self, kernel):
        env, storage = setup_platform(kernel)
        hits = []

        def target(params, ctx):
            hits.append(params["i"])
            return None

        def main():
            env.platform.create_action("guest", "target", target)
            env.platform.create_action(
                "guest", REMOTE_INVOKER_ACTION, remote_invoker_handler
            )
            record = env.platform.wait_activation(
                env.platform.invoke(
                    "guest",
                    REMOTE_INVOKER_ACTION,
                    {
                        "namespace": "guest",
                        "action": "target",
                        "calls": [{"i": i} for i in range(7)],
                        "pool_size": 1,
                    },
                )
            )
            for r in list(env.platform.activations()):
                env.platform.wait_activation(r.activation_id)
            return record.result

        result = env.kernel.run(main)
        assert result == {"invoked": 7}
        assert sorted(hits) == list(range(7))

    def test_pooled_spawning_is_faster_than_sequential(self, kernel):
        env, _storage = setup_platform(kernel)

        def target(params, ctx):
            return None

        def run(pool_size):
            record = env.platform.wait_activation(
                env.platform.invoke(
                    "guest",
                    REMOTE_INVOKER_ACTION,
                    {
                        "namespace": "guest",
                        "action": "target",
                        "calls": [{} for _ in range(20)],
                        "pool_size": pool_size,
                    },
                )
            )
            return record.duration

        def main():
            env.platform.create_action("guest", "target", target)
            env.platform.create_action(
                "guest", REMOTE_INVOKER_ACTION, remote_invoker_handler
            )
            sequential = run(1)
            pooled = run(4)
            return sequential, pooled

        sequential, pooled = env.kernel.run(main)
        assert pooled < sequential
