"""FailureReport <-> COS dead-letter round-trip must be lossless JSON."""

from __future__ import annotations

import json

import pytest

import repro as pw
from repro.core.futures import CallFailure, FailureReport


def _report() -> FailureReport:
    return FailureReport(
        executor_id="exec-ab12cd34",
        retries_total=5,
        failures=[
            CallFailure(
                call_id="00001",
                callset_id="M000",
                executor_id="exec-ab12cd34",
                activation_id="act-00000007",
                attempts=3,
                error=(
                    "Traceback (most recent call last):\n"
                    '  File "<task>", line 1, in <module>\n'
                    "ZeroDivisionError: division by zéro — ∞"
                ),
                lost=False,
            ),
            CallFailure(
                call_id="00002",
                callset_id="M000",
                executor_id="exec-ab12cd34",
                activation_id=None,
                attempts=2,
                error="container crashed (activation lost)",
                lost=True,
            ),
        ],
    )


class TestJsonRoundTrip:
    def test_lossless(self):
        report = _report()
        restored = FailureReport.from_json(report.to_json())
        assert restored == report

    def test_exception_text_exact(self):
        restored = FailureReport.from_json(_report().to_json())
        assert "ZeroDivisionError: division by zéro — ∞" in (
            restored.failures[0].error
        )
        assert restored.failures[0].error.count("\n") == 2

    def test_retry_counters_exact(self):
        restored = FailureReport.from_json(_report().to_json())
        assert restored.retries_total == 5
        assert [f.attempts for f in restored.failures] == [3, 2]
        assert [f.lost for f in restored.failures] == [False, True]

    def test_plain_json_not_pickle(self):
        # any process — a different Python, curl + jq — can read it
        raw = json.loads(_report().to_json())
        assert raw["executor_id"] == "exec-ab12cd34"
        assert len(raw["failures"]) == 2

    def test_empty_report(self):
        report = FailureReport(executor_id="exec-0", failures=[])
        restored = FailureReport.from_json(report.to_json())
        assert restored == report
        assert not restored


class TestCosDeadLetter:
    def test_put_get_round_trip(self, env):
        report = _report()

        def main():
            executor = pw.ibm_cf_executor()
            executor._storage.put_deadletter(
                executor.executor_id, "M000", report
            )
            stored_raw = executor._cos.get_object(
                executor.config.storage_bucket,
                executor._storage.deadletter_key(executor.executor_id, "M000"),
            )
            return (
                executor._storage.get_deadletter(executor.executor_id, "M000"),
                stored_raw,
            )

        stored, raw = env.run(main)
        assert stored == report
        # the stored object itself is JSON text, not a pickle blob
        parsed = json.loads(raw.decode("utf-8"))
        assert parsed["retries_total"] == 5

    def test_missing_deadletter_is_none(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            return executor._storage.get_deadletter(
                executor.executor_id, "M999"
            )

        assert env.run(main) is None

    def test_key_is_json_named(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            return executor._storage.deadletter_key(
                executor.executor_id, "M000"
            )

        key = env.run(main)
        assert key.endswith("deadletter.json")
        assert not key.endswith(".pickle")
