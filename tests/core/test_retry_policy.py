"""Unit tests for the shared retry engine and its configuration."""

from __future__ import annotations

import pytest

from repro.config import PyWrenConfig, RetryConfig
from repro.cos.errors import NoSuchKey, ServiceUnavailable, SlowDown
from repro.faas.errors import ThrottledError
from repro.net.latency import TransientNetworkError
from repro.retry import RetryPolicy, is_retryable
from repro.vtime import Kernel


class TestRetryConfig:
    def test_defaults_validate(self):
        RetryConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"initial_backoff_s": -1.0},
            {"max_backoff_s": 0.5},  # below initial_backoff_s
            {"multiplier": 0.5},
            {"jitter": "gaussian"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryConfig(**kwargs).validate()

    def test_pywren_config_carries_retry(self):
        cfg = PyWrenConfig(retry=RetryConfig(max_attempts=2))
        cfg.validate()
        assert cfg.retry.max_attempts == 2

    def test_pywren_config_rejects_non_retryconfig(self):
        with pytest.raises(ValueError, match="RetryConfig"):
            PyWrenConfig(retry={"max_attempts": 3}).validate()

    def test_from_dict_builds_nested_retry(self):
        cfg = PyWrenConfig.from_dict(
            {"retry": {"max_attempts": 4, "jitter": "none"}}
        )
        assert cfg.retry == RetryConfig(max_attempts=4, jitter="none")

    def test_from_dict_rejects_unknown_retry_keys(self):
        with pytest.raises(ValueError, match="unknown retry config keys"):
            PyWrenConfig.from_dict({"retry": {"attempts": 4}})

    def test_to_dict_roundtrip(self):
        cfg = PyWrenConfig(retry=RetryConfig(max_attempts=3), invocation_retries=7)
        again = PyWrenConfig.from_dict(cfg.to_dict())
        assert again.retry == cfg.retry
        assert again.invocation_retries == 7


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            TransientNetworkError("lost"),
            ServiceUnavailable("503"),
            SlowDown("slow down"),
            ThrottledError("429"),
        ],
    )
    def test_transient_errors_are_retryable(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize(
        "exc", [NoSuchKey("k"), ValueError("boom"), KeyError("k")]
    )
    def test_terminal_errors_are_not(self, exc):
        assert not is_retryable(exc)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            RetryConfig(initial_backoff_s=1.0, multiplier=2.0, jitter="none")
        )
        assert [policy.backoff(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 8.0]

    def test_cap_applies(self):
        policy = RetryPolicy(
            RetryConfig(initial_backoff_s=1.0, max_backoff_s=5.0, jitter="none")
        )
        assert policy.backoff(10) == 5.0

    def test_full_jitter_stays_within_base(self):
        policy = RetryPolicy(
            RetryConfig(initial_backoff_s=1.0, multiplier=2.0, jitter="full"),
            seed=3,
        )
        for attempt in range(1, 6):
            base = min(30.0, 2.0 ** (attempt - 1))
            for _ in range(20):
                assert 0.0 <= policy.backoff(attempt) <= base

    def test_retry_after_hint_overrides_schedule(self):
        policy = RetryPolicy(RetryConfig(jitter="none"))
        assert policy.backoff(1, retry_after=12.5) == 12.5

    def test_deterministic_under_seed(self):
        a = RetryPolicy(RetryConfig(), seed=11)
        b = RetryPolicy(RetryConfig(), seed=11)
        assert [a.backoff(i) for i in range(1, 8)] == [
            b.backoff(i) for i in range(1, 8)
        ]


class TestRun:
    def test_retries_until_success(self):
        kernel = Kernel()
        policy = RetryPolicy(RetryConfig(jitter="none"))
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientNetworkError("lost")
            return "ok"

        def main():
            return policy.run(flaky, kernel), kernel.now()

        value, elapsed = kernel.run(main)
        assert value == "ok"
        assert len(calls) == 3
        assert policy.retries == 2
        assert elapsed == pytest.approx(1.0 + 2.0)  # the two backoff sleeps

    def test_exhaustion_raises_last_error(self):
        kernel = Kernel()
        policy = RetryPolicy(RetryConfig(max_attempts=3, jitter="none"))
        calls = []

        def always_down():
            calls.append(1)
            raise ServiceUnavailable("503")

        with pytest.raises(ServiceUnavailable):
            kernel.run(lambda: policy.run(always_down, kernel))
        assert len(calls) == 3

    def test_non_retryable_raises_immediately(self):
        kernel = Kernel()
        policy = RetryPolicy(RetryConfig())
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            kernel.run(lambda: policy.run(broken, kernel))
        assert len(calls) == 1
        assert policy.retries == 0

    def test_retry_after_honored_in_run(self):
        kernel = Kernel()
        policy = RetryPolicy(RetryConfig(jitter="none"))
        calls = []

        def throttled_once():
            calls.append(1)
            if len(calls) == 1:
                raise ThrottledError("429", retry_after=7.0)
            return "done"

        def main():
            return policy.run(throttled_once, kernel), kernel.now()

        value, elapsed = kernel.run(main)
        assert value == "done"
        assert elapsed == pytest.approx(7.0)
