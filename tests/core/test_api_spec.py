"""Table 2 conformance: the API's methods, blocking semantics, parameters.

=============== ========== ==================================================
Method          Type       Input parameters
=============== ========== ==================================================
call_async()    Async.     function code, data
map()           Async.     map function code, map data
map_reduce()    Async.     map/reduce func. code, map data
wait()          Sync.      when to unlock, list of futures
get_result()    Sync.      None
=============== ========== ==================================================
"""

from __future__ import annotations

import inspect

import pytest

import repro as pw
from repro.core.executor import FunctionExecutor


class TestSurface:
    def test_all_five_methods_exist(self):
        for method in ["call_async", "map", "map_reduce", "wait", "get_result"]:
            assert callable(getattr(FunctionExecutor, method))

    def test_call_async_signature(self):
        params = list(inspect.signature(FunctionExecutor.call_async).parameters)
        assert params[1:3] == ["func", "data"]

    def test_map_signature(self):
        params = list(inspect.signature(FunctionExecutor.map).parameters)
        assert params[1:3] == ["map_function", "iterdata"]

    def test_map_reduce_signature(self):
        params = inspect.signature(FunctionExecutor.map_reduce).parameters
        names = list(params)
        assert names[1:4] == ["map_function", "iterdata", "reduce_function"]
        assert "reducer_one_per_object" in params
        assert params["reducer_one_per_object"].default is False
        assert "chunk_size" in params

    def test_wait_signature(self):
        params = inspect.signature(FunctionExecutor.wait).parameters
        assert "return_when" in params
        assert "futures" in params

    def test_get_result_takes_no_required_parameters(self):
        params = inspect.signature(FunctionExecutor.get_result).parameters
        required = [
            n
            for n, p in params.items()
            if n != "self" and p.default is inspect.Parameter.empty
        ]
        assert required == []

    def test_module_entry_point_name(self):
        """§4.1: 'import the module pywren_ibm_cloud, and call the function
        ibm_cf_executor()' — our package exposes the same factory name."""
        assert callable(pw.ibm_cf_executor)


class TestBlockingSemantics:
    def test_async_methods_return_before_execution(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def slow(x):
                pw.sleep(50)
                return x

            t0 = pw.now()
            executor.call_async(slow, 1)
            executor.map(slow, [1, 2])
            executor.map_reduce(slow, [1], lambda r: r)
            return pw.now() - t0

        # all three computing methods returned in a few seconds of
        # invocation time, far below one 50 s execution
        assert env.run(main) < 25.0

    def test_sync_methods_block(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def slow(x):
                pw.sleep(30)
                return x

            executor.map(slow, [1, 2])
            t0 = pw.now()
            executor.wait()
            waited = pw.now() - t0
            results = executor.get_result()
            return waited, results

        waited, results = env.run(main)
        assert waited >= 25.0
        assert results == [1, 2]

    def test_unlock_constants_exposed(self):
        assert pw.ALWAYS != pw.ANY_COMPLETED != pw.ALL_COMPLETED
