"""Tests for dynamic composition (§4.4): sequences, nesting, unwrapping."""

from __future__ import annotations

import pytest

import repro as pw
from repro.core.composition import compose, sequence


def inc(x):
    return x + 1


def double(x):
    return x * 2


class TestSequence:
    def test_two_stage_sequence(self, env):
        def main():
            future = pw.sequence([inc, double], 5)
            return future.result()

        assert env.run(main) == 12

    def test_each_stage_runs_as_its_own_function(self, env):
        def main():
            future = pw.sequence([inc, inc, inc], 0)
            result = future.result()
            runners = [
                r
                for r in env.platform.activations()
                if r.action_name.startswith("pywren_runner")
            ]
            return result, len(runners)

        result, n_functions = env.run(main)
        assert result == 3
        assert n_functions == 3  # one invocation per stage

    def test_single_function_sequence(self, env):
        def main():
            return pw.sequence([double], 21).result()

        assert env.run(main) == 42

    def test_empty_sequence_rejected(self, env):
        def main():
            with pytest.raises(ValueError):
                pw.sequence([], 1)
            return True

        assert env.run(main)

    def test_get_result_is_composition_aware(self, env):
        """§4.2: get_result 'transparently waits for an on-going function
        composition to complete, just returning the final result'."""

        def main():
            executor = pw.ibm_cf_executor()
            pw.sequence([inc, double, inc], 3, executor=executor)
            return executor.get_result()

        assert env.run(main) == 9


class TestCompose:
    def test_compose_mathematical_order(self, env):
        def main():
            f = compose(double, inc)  # double(inc(x))
            return f(5).result()

        assert env.run(main) == 12

    def test_compose_name(self):
        f = compose(double, inc)
        assert "double" in f.__name__ and "inc" in f.__name__

    def test_compose_empty_rejected(self):
        with pytest.raises(ValueError):
            compose()


class TestNestedParallelism:
    def test_function_spawning_parallel_job(self, env):
        """The paper's foo()/random_list example."""

        def main():
            def add_seven(y):
                return y + 7

            def foo(_):
                executor = pw.ibm_cf_executor()
                return executor.map(add_seven, list(range(20)))

            executor = pw.ibm_cf_executor()
            executor.call_async(foo, None)
            return executor.get_result()

        assert env.run(main) == [i + 7 for i in range(20)]

    def test_two_levels_of_nesting(self, env):
        def main():
            def leaf(x):
                return x * 10

            def mid(xs):
                executor = pw.ibm_cf_executor()
                return executor.map(leaf, xs)

            def root(_):
                executor = pw.ibm_cf_executor()
                return executor.map(mid, [[1, 2], [3, 4]])

            executor = pw.ibm_cf_executor()
            executor.call_async(root, None)
            return executor.get_result()

        assert env.run(main) == [[10, 20], [30, 40]]

    def test_nested_executor_uses_in_cloud_links(self, env):
        """Executors created inside functions see in-cloud latency."""

        def main():
            def probe(_):
                executor = pw.ibm_cf_executor()
                return executor.in_cloud

            executor = pw.ibm_cf_executor()
            outer_in_cloud = executor.in_cloud
            inner_in_cloud = executor.call_async(probe, None).result()
            return outer_in_cloud, inner_in_cloud

        assert env.run(main) == (False, True)

    def test_nested_spawning_is_faster_than_client_spawning(self, env):
        """Invoking N functions from inside the cloud beats the WAN client —
        the asymmetry behind §5.1."""

        def main():
            def noop(x):
                return x

            def fan_out(_):
                executor = pw.ibm_cf_executor()
                t0 = pw.now()
                futures = executor.map(noop, list(range(40)))
                executor.wait(futures)
                return pw.now() - t0

            executor = pw.ibm_cf_executor()
            inner_elapsed = executor.call_async(fan_out, None).result()

            t0 = pw.now()
            futures = executor.map(noop, list(range(40)))
            executor.wait(futures)
            outer_elapsed = pw.now() - t0
            return inner_elapsed, outer_elapsed

        inner, outer = env.run(main)
        assert inner < outer
