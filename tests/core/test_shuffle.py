"""Tests for the COS-based shuffle (keyed MapReduce)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as pw
from repro.core.shuffle import (
    merge_shuffle_results,
    partition_pairs,
    stable_key_hash,
)


class TestPartitioning:
    def test_stable_hash_deterministic(self):
        assert stable_key_hash("word") == stable_key_hash("word")
        assert stable_key_hash(("a", 1)) == stable_key_hash(("a", 1))

    def test_different_keys_spread(self):
        buckets = {stable_key_hash(f"key-{i}") % 8 for i in range(100)}
        assert len(buckets) == 8  # all reducers get some keys

    def test_partition_pairs_groups_same_key_together(self):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        buckets = partition_pairs(pairs, 4)
        assert sum(len(b) for b in buckets) == 5
        location = {}
        for index, bucket in enumerate(buckets):
            for key, _value in bucket:
                location.setdefault(key, set()).add(index)
        assert all(len(spots) == 1 for spots in location.values())

    @settings(max_examples=50, deadline=None)
    @given(
        keys=st.lists(st.text(max_size=6), max_size=50),
        n_reducers=st.integers(min_value=1, max_value=16),
    )
    def test_partitioning_is_total_and_consistent(self, keys, n_reducers):
        pairs = [(k, i) for i, k in enumerate(keys)]
        buckets = partition_pairs(pairs, n_reducers)
        assert len(buckets) == n_reducers
        flat = [p for b in buckets for p in b]
        assert sorted(flat) == sorted(pairs)


class TestMergeResults:
    def test_merge_disjoint(self):
        assert merge_shuffle_results([{"a": 1}, {"b": 2}]) == {"a": 1, "b": 2}

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="invariant"):
            merge_shuffle_results([{"a": 1}, {"a": 2}])

    def test_empty(self):
        assert merge_shuffle_results([]) == {}


class TestEndToEnd:
    def test_wordcount_by_key(self, env):
        documents = [
            "cloud functions run python",
            "python functions scale",
            "cloud scale cloud",
        ]

        def emit_words(doc):
            return [(word, 1) for word in doc.split()]

        def count(key, values):
            return sum(values)

        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce_shuffle(
                emit_words, documents, count, n_reducers=3
            )
            return merge_shuffle_results(executor.get_result(reducers))

        counts = env.run(main)
        assert counts == {
            "cloud": 3,
            "functions": 2,
            "run": 1,
            "python": 2,
            "scale": 2,
        }

    def test_reducer_count_respected(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce_shuffle(
                lambda x: [(x % 5, x)], list(range(20)), lambda k, vs: sum(vs),
                n_reducers=7,
            )
            assert len(reducers) == 7
            assert [r.metadata["reducer_index"] for r in reducers] == list(range(7))
            return merge_shuffle_results(executor.get_result(reducers))

        result = env.run(main)
        assert result == {m: sum(x for x in range(20) if x % 5 == m) for m in range(5)}

    def test_over_storage_partitions(self, env):
        env.storage.create_bucket("docs")
        env.storage.put_object("docs", "d1", b"alpha beta\nalpha\n")
        env.storage.put_object("docs", "d2", b"beta beta\ngamma\n")

        def emit(partition):
            text = partition.read_lines().decode()
            return [(w, 1) for w in text.split()]

        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce_shuffle(
                emit, "cos://docs", lambda k, vs: sum(vs), n_reducers=2
            )
            return merge_shuffle_results(executor.get_result(reducers))

        assert env.run(main) == {"alpha": 2, "beta": 3, "gamma": 1}

    def test_map_failure_propagates_to_reducers(self, env):
        from repro.core.errors import FunctionError

        def bad_map(x):
            if x == 1:
                raise RuntimeError("map died")
            return [(x, 1)]

        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce_shuffle(
                bad_map, [0, 1, 2], lambda k, vs: sum(vs), n_reducers=2
            )
            failures = 0
            for reducer in reducers:
                try:
                    reducer.result()
                except FunctionError:
                    failures += 1
            return failures

        assert env.run(main) == 2  # every reducer surfaces the map failure

    def test_empty_dataset_rejected(self, env):
        from repro.core.errors import PyWrenError

        def main():
            executor = pw.ibm_cf_executor()
            with pytest.raises(PyWrenError):
                executor.map_reduce_shuffle(
                    lambda x: [], [], lambda k, vs: vs, n_reducers=2
                )
            return True

        assert env.run(main)

    def test_invalid_reducer_count(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            with pytest.raises(ValueError):
                executor.map_reduce_shuffle(
                    lambda x: [], [1], lambda k, vs: vs, n_reducers=0
                )
            return True

        assert env.run(main)

    def test_values_preserve_order_within_map(self, env):
        """Values from one map task arrive in emission order."""

        def emit(x):
            return [("k", (x, i)) for i in range(3)]

        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce_shuffle(
                emit, [7], lambda k, vs: vs, n_reducers=1
            )
            return merge_shuffle_results(executor.get_result(reducers))

        assert env.run(main) == {"k": [(7, 0), (7, 1), (7, 2)]}
