"""Sanity tests for the calibrated cost models."""

from __future__ import annotations

import pytest

from repro.core import cost
from repro.datasets import airbnb


class TestTable3Anchors:
    def test_sequential_baseline_matches_paper(self):
        """1.9 GB at the notebook rate + 33 renders ~= 5,160 s."""
        total = cost.notebook_tone_seconds(airbnb.TOTAL_SIZE) + cost.render_seconds(33)
        assert total == pytest.approx(5160, rel=0.01)

    def test_64mb_map_time_matches_paper_row(self):
        """One 64 MB partition ~= the 471 s row minus job overheads."""
        seconds = cost.tone_map_seconds(64 * 1024 * 1024)
        assert 430 <= seconds <= 480

    def test_2mb_map_time_small(self):
        seconds = cost.tone_map_seconds(2 * 1024 * 1024)
        assert seconds < 30

    def test_map_cost_monotone_in_bytes(self):
        sizes = [1, 10**6, 10**7, 10**8]
        times = [cost.tone_map_seconds(s) for s in sizes]
        assert times == sorted(times)

    def test_worker_overhead_floor(self):
        assert cost.tone_map_seconds(0) == cost.WORKER_OVERHEAD_SECONDS


class TestMergesortModel:
    def test_sort_nloglog_shape(self):
        assert cost.sort_seconds(0) == 0.0
        assert cost.sort_seconds(1) == 0.0
        million = cost.sort_seconds(1_000_000)
        two_million = cost.sort_seconds(2_000_000)
        # superlinear but less than quadratic
        assert 2.0 < two_million / million < 2.2

    def test_merge_linear(self):
        assert cost.merge_seconds(2_000_000) == pytest.approx(
            2 * cost.merge_seconds(1_000_000)
        )

    def test_merge_cheaper_than_sort(self):
        n = 5_000_000
        assert cost.merge_seconds(n) < cost.sort_seconds(n)

    def test_array_bytes(self):
        assert cost.array_bytes(1000) == 8000

    def test_fig_constants(self):
        assert cost.FIG2_TASK_SECONDS == 50.0
        assert cost.FIG3_TASK_SECONDS == 60.0
