"""Unit tests for the task pool and progress bar."""

from __future__ import annotations

import io

import pytest

from repro.core.pool import run_pool
from repro.core.progress import ProgressBar
from repro.vtime import sleep


class TestRunPool:
    def test_results_in_input_order(self, kernel):
        def main():
            return run_pool(kernel, lambda x: x * 2, [3, 1, 2], pool_size=2)

        assert kernel.run(main) == [6, 2, 4]

    def test_concurrency_bounded(self, kernel):
        def main():
            def job(_):
                sleep(10)

            run_pool(kernel, job, list(range(8)), pool_size=2)
            return kernel.now()

        # 8 jobs, 2 at a time, 10 s each = 40 s
        assert kernel.run(main) == 40.0

    def test_pool_larger_than_items(self, kernel):
        def main():
            def job(x):
                sleep(5)
                return x

            results = run_pool(kernel, job, [1, 2], pool_size=100)
            return results, kernel.now()

        assert kernel.run(main) == ([1, 2], 5.0)

    def test_empty_items(self, kernel):
        def main():
            return run_pool(kernel, lambda x: x, [], pool_size=4)

        assert kernel.run(main) == []

    def test_exception_propagates(self, kernel):
        def main():
            def bad(x):
                if x == 2:
                    raise RuntimeError("job 2")
                return x

            run_pool(kernel, bad, [1, 2, 3], pool_size=2)

        with pytest.raises(RuntimeError, match="job 2"):
            kernel.run(main)

    def test_work_stealing(self, kernel):
        """A slow item does not block the other worker from draining."""

        def main():
            def job(x):
                sleep(100 if x == 0 else 1)
                return x

            run_pool(kernel, job, [0, 1, 2, 3, 4], pool_size=2)
            return kernel.now()

        # worker A takes item 0 (100 s); worker B does 1..4 (4 s)
        assert kernel.run(main) == 100.0


class TestProgressBar:
    def test_renders_updates(self):
        out = io.StringIO()
        bar = ProgressBar(10, enabled=True, stream=out)
        bar.update(5)
        bar.update(10)
        bar.close()
        text = out.getvalue()
        assert "5/10" in text
        assert "10/10" in text
        assert "100.0%" in text

    def test_disabled_writes_nothing(self):
        out = io.StringIO()
        bar = ProgressBar(10, enabled=False, stream=out)
        bar.update(5)
        bar.close()
        assert out.getvalue() == ""

    def test_duplicate_updates_coalesced(self):
        out = io.StringIO()
        bar = ProgressBar(4, enabled=True, stream=out)
        bar.update(2)
        first = out.getvalue()
        bar.update(2)
        assert out.getvalue() == first

    def test_zero_total_disabled(self):
        out = io.StringIO()
        bar = ProgressBar(0, enabled=True, stream=out)
        bar.update(0)
        bar.close()
        assert out.getvalue() == ""

    def test_context_manager(self):
        out = io.StringIO()
        with ProgressBar(2, enabled=True, stream=out) as bar:
            bar.update(2)
        assert out.getvalue().endswith("\n")
