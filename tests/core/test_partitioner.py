"""Unit + property tests for data discovery and partitioning (§4.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cos import CloudObjectStorage, COSClient
from repro.cos.client import ObjectSummary
from repro.core.partitioner import (
    StoragePartition,
    build_partitions,
    discover_objects,
    partition_objects,
)
from repro.net import LatencyModel, NetworkLink


def make_cos(kernel, objects: dict[str, dict[str, int]]):
    """Build a store: {bucket: {key: size}} of virtual objects."""
    store = CloudObjectStorage(kernel)
    for bucket, keys in objects.items():
        store.create_bucket(bucket)
        for key, size in keys.items():
            store.put_virtual_object(bucket, key, size)
    link = NetworkLink(kernel, LatencyModel(rtt=0.0, jitter=0.0), seed=1)
    return COSClient(store, link)


def summaries(sizes: list[int]) -> list[ObjectSummary]:
    return [
        ObjectSummary("b", f"obj-{i:03d}", size, etag=f"e{i}", last_modified=0.0)
        for i, size in enumerate(sizes)
    ]


class TestDiscovery:
    def test_whole_bucket(self, kernel):
        def main():
            cos = make_cos(kernel, {"data": {"a": 10, "b": 20, "c": 5}})
            return [o.key for o in discover_objects(cos, "data")]

        assert kernel.run(main) == ["a", "b", "c"]

    def test_single_object(self, kernel):
        def main():
            cos = make_cos(kernel, {"data": {"a": 10, "b": 20}})
            return [(o.key, o.size) for o in discover_objects(cos, "data/b")]

        assert kernel.run(main) == [("b", 20)]

    def test_prefix(self, kernel):
        def main():
            cos = make_cos(
                kernel, {"data": {"x/1": 1, "x/2": 2, "y/3": 3}}
            )
            return [o.key for o in discover_objects(cos, "data/x/")]

        assert kernel.run(main) == ["x/1", "x/2"]

    def test_mixed_list_deduplicates(self, kernel):
        def main():
            cos = make_cos(kernel, {"data": {"a": 1, "b": 2}})
            objs = discover_objects(cos, ["data", "data/a"])
            return [o.key for o in objs]

        assert kernel.run(main) == ["a", "b"]

    def test_multiple_buckets(self, kernel):
        def main():
            cos = make_cos(kernel, {"b1": {"k": 5}, "b2": {"j": 6}})
            return [(o.bucket, o.key) for o in discover_objects(cos, ["b1", "b2"])]

        assert kernel.run(main) == [("b1", "k"), ("b2", "j")]

    def test_empty_entry_rejected(self, kernel):
        def main():
            cos = make_cos(kernel, {"b": {}})
            with pytest.raises(ValueError):
                discover_objects(cos, "")
            return True

        assert kernel.run(main)


class TestPartitioning:
    def test_per_object_when_no_chunk_size(self):
        parts = partition_objects(summaries([100, 200]), None)
        assert len(parts) == 2
        assert all(p.is_whole_object for p in parts)

    def test_chunking_splits_large_objects(self):
        parts = partition_objects(summaries([250]), 100)
        assert [(p.range_start, p.range_end) for p in parts] == [
            (0, 100),
            (100, 200),
            (200, 250),
        ]

    def test_small_object_single_partition(self):
        parts = partition_objects(summaries([50]), 100)
        assert len(parts) == 1
        assert parts[0].is_whole_object

    def test_exact_multiple_has_no_empty_tail(self):
        parts = partition_objects(summaries([300]), 100)
        assert len(parts) == 3
        assert parts[-1].range_end == 300

    def test_empty_object_yields_one_empty_partition(self):
        parts = partition_objects(summaries([0]), 100)
        assert len(parts) == 1
        assert parts[0].size == 0

    def test_partition_indices(self):
        parts = partition_objects(summaries([250]), 100)
        assert [p.partition_index for p in parts] == [0, 1, 2]
        assert all(p.partitions_of_object == 3 for p in parts)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            partition_objects(summaries([10]), 0)
        with pytest.raises(ValueError):
            partition_objects(summaries([10]), -5)

    def test_nonlinear_concurrency_growth(self):
        """Table 3's note: halving the chunk does not double partitions,
        because partitioning happens per object."""
        sizes = [150, 90, 60]  # three 'cities'
        n_100 = len(partition_objects(summaries(sizes), 100))
        n_50 = len(partition_objects(summaries(sizes), 50))
        assert n_100 == 4  # 2 + 1 + 1
        assert n_50 == 7  # 3 + 2 + 2
        assert n_50 < 2 * n_100

    @settings(max_examples=100, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=20),
        chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=3_000)),
    )
    def test_coverage_invariants(self, sizes, chunk):
        """Partitions tile each object exactly: no gaps, no overlaps."""
        parts = partition_objects(summaries(sizes), chunk)
        by_key: dict[str, list[StoragePartition]] = {}
        for p in parts:
            by_key.setdefault(p.key, []).append(p)
        for i, size in enumerate(sizes):
            key = f"obj-{i:03d}"
            object_parts = sorted(by_key[key], key=lambda p: p.range_start)
            assert object_parts[0].range_start == 0
            assert object_parts[-1].range_end == size
            for a, b in zip(object_parts, object_parts[1:]):
                assert a.range_end == b.range_start  # contiguous
            if chunk is not None:
                assert all(p.size <= chunk for p in object_parts)
            assert sum(p.size for p in object_parts) == size


class TestStoragePartition:
    def test_spec_roundtrip(self):
        part = StoragePartition("b", "k", 10, 20, 100, 1, 5)
        restored = StoragePartition.from_spec(part.spec())
        assert restored == part

    def test_read_requires_cos(self):
        part = StoragePartition("b", "k", 0, 10, 10)
        with pytest.raises(RuntimeError, match="not bound"):
            part.read()

    def test_read_through_cos(self, kernel):
        def main():
            cos = make_cos(kernel, {"b": {}})
            cos.store.put_object("b", "k", b"0123456789")
            part = StoragePartition("b", "k", 2, 6, 10, cos=cos)
            return part.read()

        assert kernel.run(main) == b"2345"

    def test_build_partitions_end_to_end(self, kernel):
        def main():
            cos = make_cos(kernel, {"data": {"big": 250, "small": 30}})
            parts = build_partitions(cos, "data", 100)
            return sorted((p.key, p.range_start, p.range_end) for p in parts)

        assert kernel.run(main) == [
            ("big", 0, 100),
            ("big", 100, 200),
            ("big", 200, 250),
            ("small", 0, 30),
        ]
