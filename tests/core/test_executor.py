"""Integration-style unit tests for the FunctionExecutor API."""

from __future__ import annotations

import pytest

import repro as pw
from repro.core.errors import FunctionError, ResultTimeoutError
from repro.core.futures import ANY_COMPLETED, ResponseFuture


def add_seven(x):
    return x + 7


class TestCallAsync:
    def test_is_nonblocking(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def slow(x):
                pw.sleep(30)
                return x

            t0 = pw.now()
            future = executor.call_async(slow, 1)
            submitted_at = pw.now() - t0
            assert future.result() == 1
            return submitted_at, pw.now() - t0

        submitted, total = env.run(main)
        assert submitted < 5.0  # returned long before the function ended
        assert total >= 30.0

    def test_single_result_via_get_result(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            executor.call_async(add_seven, 35)
            return executor.get_result()

        assert env.run(main) == 42  # scalar, not a list

    def test_function_exception_propagates(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def bad(_):
                raise KeyError("missing")

            future = executor.call_async(bad, None)
            with pytest.raises(FunctionError) as info:
                future.result()
            return str(info.value.cause)

        assert "missing" in env.run(main)

    def test_remote_traceback_attached(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def bad(_):
                raise RuntimeError("deep failure")

            future = executor.call_async(bad, None)
            try:
                future.result()
            except FunctionError as exc:
                return exc.remote_traceback

        tb = env.run(main)
        assert "deep failure" in tb
        assert "Traceback" in tb


class TestMap:
    def test_one_executor_per_element(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(add_seven, [3, 6, 9])
            assert len(futures) == 3
            return executor.get_result(futures)

        assert env.run(main) == [10, 13, 16]

    def test_results_preserve_order(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def variable_time(i):
                pw.sleep(20 - i)  # later elements finish sooner
                return i

            futures = executor.map(variable_time, list(range(8)))
            return executor.get_result(futures)

        assert env.run(main) == list(range(8))

    def test_empty_iterdata(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            return executor.map(add_seven, [])

        assert env.run(main) == []

    def test_chunk_size_rejected_for_plain_data(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            with pytest.raises(ValueError):
                executor.map(add_seven, [1, 2], chunk_size=100)
            return True

        assert env.run(main)

    def test_mixed_value_types(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x, [1, "a", [2], {"k": 3}, None])
            return executor.get_result(futures)

        assert env.run(main) == [1, "a", [2], {"k": 3}, None]

    def test_one_failure_does_not_poison_others(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def sometimes(x):
                if x == 2:
                    raise ValueError("x=2")
                return x

            futures = executor.map(sometimes, [1, 2, 3])
            ok = [f.result(throw_except=False) for f in futures]
            return ok

        assert env.run(main) == [1, None, 3]


class TestExecutorObject:
    def test_unique_executor_ids(self, env):
        def main():
            a = pw.ibm_cf_executor()
            b = pw.ibm_cf_executor()
            return a.executor_id, b.executor_id

        id_a, id_b = env.run(main)
        assert id_a != id_b
        assert id_a.startswith("exec-")

    def test_runtime_override_per_executor(self, env):
        env.registry.build_custom_runtime(
            "me/matplotlib:1", owner="me", extra_packages=["matplotlib"]
        )

        def main():
            executor = pw.ibm_cf_executor(runtime="me/matplotlib:1")
            assert executor.config.runtime == "me/matplotlib:1"
            future = executor.call_async(add_seven, 1)
            return future.result()

        assert env.run(main) == 8

    def test_unknown_runtime_fails_fast(self, env):
        from repro.faas.errors import RuntimeNotFound

        def main():
            with pytest.raises(RuntimeNotFound):
                pw.ibm_cf_executor(runtime="ghost:9")
            return True

        assert env.run(main)

    def test_futures_tracked_across_jobs(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            executor.map(add_seven, [1, 2])
            executor.call_async(add_seven, 3)
            return executor.get_result()

        assert env.run(main) == [8, 9, 10]

    def test_config_override_kwargs(self, env):
        def main():
            executor = pw.ibm_cf_executor(invoker_pool_size=2, poll_interval=0.5)
            return executor.config.invoker_pool_size, executor.config.poll_interval

        assert env.run(main) == (2, 0.5)

    def test_no_environment_raises(self):
        with pytest.raises(pw.NoActiveEnvironmentError):
            pw.ibm_cf_executor()


class TestWaitSemantics:
    def test_wait_any(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def staggered(i):
                pw.sleep(float(i) * 10)
                return i

            futures = executor.map(staggered, [0, 1, 2])
            done, not_done = executor.wait(futures, return_when=ANY_COMPLETED)
            return len(done) >= 1, len(done) + len(not_done)

        got_any, total = env.run(main)
        assert got_any
        assert total == 3

    def test_wait_all_default(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(add_seven, [1, 2, 3])
            done, not_done = executor.wait(futures)
            return len(done), len(not_done)

        assert env.run(main) == (3, 0)


class TestGetResult:
    def test_timeout(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def forever(_):
                pw.sleep(10_000)

            executor.call_async(forever, None)
            with pytest.raises(ResultTimeoutError):
                executor.get_result(timeout=20)
            return True

        assert env.run(main)

    def test_explicit_single_future_returns_scalar(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(add_seven, [1, 2])
            one = executor.get_result(futures[1])
            both = executor.get_result(futures)
            return one, both

        assert env.run(main) == (9, [8, 9])

    def test_get_result_empty(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            return executor.get_result([])

        assert env.run(main) is None
