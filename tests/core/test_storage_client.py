"""Unit tests for the internal-storage key schema."""

from __future__ import annotations

import pytest

from repro.core.storage_client import InternalStorage
from repro.cos import CloudObjectStorage, COSClient
from repro.net import LatencyModel, NetworkLink


@pytest.fixture()
def storage(kernel) -> InternalStorage:
    store = CloudObjectStorage(kernel)
    store.create_bucket("internal")
    link = NetworkLink(kernel, LatencyModel(rtt=0.0, jitter=0.0), seed=0)
    return InternalStorage(COSClient(store, link), "internal", prefix="pywren.jobs")


class TestKeySchema:
    def test_key_layout(self, storage):
        assert (
            storage.func_key("e1", "M000")
            == "pywren.jobs/e1/M000/func.pickle"
        )
        assert (
            storage.status_key("e1", "M000", "00002")
            == "pywren.jobs/e1/M000/00002/status.pickle"
        )
        assert (
            storage.result_key("e1", "M000", "00002")
            == "pywren.jobs/e1/M000/00002/result.pickle"
        )

    def test_prefix_normalized(self, kernel):
        store = CloudObjectStorage(kernel)
        store.create_bucket("b")
        link = NetworkLink(kernel, LatencyModel(rtt=0.0, jitter=0.0), seed=0)
        storage = InternalStorage(COSClient(store, link), "b", prefix="/x/y/")
        assert storage.func_key("e", "c").startswith("x/y/e/c/")


class TestRoundtrips:
    def test_func_roundtrip(self, kernel, storage):
        def main():
            storage.put_func("e1", "M000", b"function-bytes")
            return storage.get_func("e1", "M000")

        assert kernel.run(main) == b"function-bytes"

    def test_agg_data_ranges(self, kernel, storage):
        def main():
            storage.put_agg_data("e1", "M000", b"aaabbbbcc")
            return (
                storage.get_data_range("e1", "M000", 0, 3),
                storage.get_data_range("e1", "M000", 3, 7),
                storage.get_data_range("e1", "M000", 7, 9),
            )

        assert kernel.run(main) == (b"aaa", b"bbbb", b"cc")

    def test_status_roundtrip_and_missing(self, kernel, storage):
        def main():
            assert storage.get_status("e1", "M000", "00000") is None
            storage.put_status("e1", "M000", "00000", {"success": True, "x": 1})
            return storage.get_status("e1", "M000", "00000")

        assert kernel.run(main) == {"success": True, "x": 1}

    def test_result_roundtrip(self, kernel, storage):
        def main():
            storage.put_result("e1", "M000", "00000", {"value": [1, 2]})
            return storage.get_result("e1", "M000", "00000")

        assert kernel.run(main) == {"value": [1, 2]}


class TestListing:
    def test_list_done_call_ids(self, kernel, storage):
        def main():
            for call_id in ["00000", "00003", "00007"]:
                storage.put_status("e1", "M000", call_id, {"success": True})
            storage.put_status("e1", "M001", "00001", {"success": True})
            return storage.list_done_call_ids("e1", "M000")

        assert kernel.run(main) == {"00000", "00003", "00007"}

    def test_list_empty_callset(self, kernel, storage):
        def main():
            return storage.list_done_call_ids("e1", "NONE")

        assert kernel.run(main) == set()

    def test_callsets_isolated_per_executor(self, kernel, storage):
        def main():
            storage.put_status("e1", "M000", "00000", {"success": True})
            return storage.list_done_call_ids("e2", "M000")

        assert kernel.run(main) == set()
