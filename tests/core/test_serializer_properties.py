"""Property-based tests for the serializer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serializer import deserialize, serialize

# JSON-ish nested data
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
nested = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


class TestDataProperties:
    @settings(max_examples=150, deadline=None)
    @given(value=nested)
    def test_roundtrip_identity(self, value):
        assert deserialize(serialize(value)) == value

    @settings(max_examples=50, deadline=None)
    @given(value=nested)
    def test_serialization_deterministic(self, value):
        assert serialize(value) == serialize(value)

    @settings(max_examples=50, deadline=None)
    @given(
        factor=st.integers(min_value=-1000, max_value=1000),
        offsets=st.lists(st.integers(min_value=-100, max_value=100), max_size=10),
    )
    def test_closure_roundtrip_behaviour(self, factor, offsets):
        """A closure over arbitrary ints behaves identically after travel."""

        def fn(x):
            return [x * factor + o for o in offsets]

        restored = deserialize(serialize(fn))
        assert restored(7) == fn(7)
        assert restored(-3) == fn(-3)


class TestBillingProperties:
    @settings(max_examples=100, deadline=None)
    @given(duration=st.floats(min_value=0, max_value=10_000, allow_nan=False))
    def test_billed_duration_bounds(self, duration):
        from repro.faas.billing import BILLING_QUANTUM_S, billed_duration

        billed = billed_duration(duration)
        assert billed >= duration - 1e-9  # never undercharge (mod epsilon)
        assert billed - duration <= BILLING_QUANTUM_S + 1e-9  # never overcharge more than a quantum
        # quantized
        quanta = billed / BILLING_QUANTUM_S
        assert abs(quanta - round(quanta)) < 1e-6

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.floats(min_value=0, max_value=1000, allow_nan=False),
        b=st.floats(min_value=0, max_value=1000, allow_nan=False),
    )
    def test_billed_duration_monotone(self, a, b):
        from repro.faas.billing import billed_duration

        low, high = sorted((a, b))
        assert billed_duration(low) <= billed_duration(high)
