"""Tests for executor.clean() and activation logs."""

from __future__ import annotations

import pytest

import repro as pw


class TestClean:
    def test_clean_removes_all_executor_objects(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            executor.get_result(executor.map(lambda x: x, [1, 2, 3]))
            prefix = f"{executor.config.storage_prefix}/{executor.executor_id}/"
            before = env.storage.list_keys(executor.config.storage_bucket, prefix)
            deleted = executor.clean()
            after = env.storage.list_keys(executor.config.storage_bucket, prefix)
            return len(before), deleted, len(after)

        before, deleted, after = env.run(main)
        assert before > 0
        assert deleted == before
        assert after == 0

    def test_clean_single_callset(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            first = executor.map(lambda x: x, [1])
            second = executor.map(lambda x: x, [2])
            executor.get_result(first + second)
            deleted = executor.clean(callset_id=first[0].callset_id)
            prefix = f"{executor.config.storage_prefix}/{executor.executor_id}/"
            remaining = env.storage.list_keys(
                executor.config.storage_bucket, prefix
            )
            return deleted, remaining

        deleted, remaining = env.run(main)
        assert deleted > 0
        # the second callset's objects survive
        assert any("M001" in key for key in remaining)
        assert not any("M000" in key for key in remaining)

    def test_clean_other_executors_untouched(self, env):
        def main():
            ex1 = pw.ibm_cf_executor()
            ex2 = pw.ibm_cf_executor()
            ex1.get_result(ex1.map(lambda x: x, [1]))
            ex2.get_result(ex2.map(lambda x: x, [2]))
            ex1.clean()
            prefix2 = f"{ex2.config.storage_prefix}/{ex2.executor_id}/"
            return env.storage.list_keys(ex2.config.storage_bucket, prefix2)

        assert len(env.run(main)) > 0

    def test_clean_empty_executor(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            return executor.clean()

        assert env.run(main) == 0


class TestActivationLogs:
    def test_ctx_log_recorded_with_timestamps(self, kernel):
        from repro.cos import CloudObjectStorage
        from repro.faas import CloudFunctions

        platform = CloudFunctions(kernel, CloudObjectStorage(kernel))

        def chatty(params, ctx):
            ctx.log("starting")
            ctx.sleep(5)
            ctx.log("halfway")
            ctx.sleep(5)
            ctx.log("done")
            return None

        platform.create_action("guest", "chatty", chatty)

        def main():
            record = platform.wait_activation(platform.invoke("guest", "chatty", {}))
            return record.logs

        logs = kernel.run(main)
        assert [msg for _t, msg in logs] == ["starting", "halfway", "done"]
        times = [t for t, _msg in logs]
        assert times[1] - times[0] == pytest.approx(5.0)
        assert times == sorted(times)

    def test_logs_empty_by_default(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            executor.call_async(lambda x: x, 1).result()
            runner = [
                r
                for r in env.platform.activations()
                if r.action_name.startswith("pywren_runner")
            ][0]
            return runner.logs

        assert env.run(main) == []
