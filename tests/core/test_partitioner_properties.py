"""Property tests for the partitioner (§4.3): chunking is a tiling.

For any generated mix of object sizes and chunk sizes, the byte ranges the
partitioner produces must be non-overlapping and gap-free, covering every
object exactly once — the invariant that makes both the per-partition map
mode and the ``reducer_one_per_object`` grouping exact rather than
approximate.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import (
    StoragePartition,
    build_partitions,
    discover_objects,
    partition_objects,
)
from repro.cos.client import ObjectSummary


def _summaries(draw_sizes: list[int], bucket: str = "b") -> list[ObjectSummary]:
    return [
        ObjectSummary(
            bucket=bucket,
            key=f"obj-{i:04d}",
            size=size,
            etag=f"etag-{i}",
            last_modified=0.0,
        )
        for i, size in enumerate(draw_sizes)
    ]


def _group_by_object(
    partitions: list[StoragePartition],
) -> dict[tuple[str, str], list[StoragePartition]]:
    groups: dict[tuple[str, str], list[StoragePartition]] = {}
    for part in partitions:
        groups.setdefault((part.bucket, part.key), []).append(part)
    return groups


sizes = st.lists(st.integers(min_value=0, max_value=50_000), min_size=1, max_size=20)
chunks = st.one_of(st.none(), st.integers(min_value=1, max_value=8_192))


class TestPartitionTiling:
    @settings(max_examples=100, deadline=None)
    @given(object_sizes=sizes, chunk_size=chunks)
    def test_ranges_tile_each_object_exactly_once(self, object_sizes, chunk_size):
        """Partitions of each object are gap-free, non-overlapping, and
        cover [0, size) exactly — no byte mapped twice, none dropped."""
        objects = _summaries(object_sizes)
        groups = _group_by_object(partition_objects(objects, chunk_size))

        assert set(groups) == {(o.bucket, o.key) for o in objects}
        by_key = {(o.bucket, o.key): o for o in objects}
        for ident, parts in groups.items():
            obj = by_key[ident]
            parts = sorted(parts, key=lambda p: p.range_start)
            assert parts[0].range_start == 0
            assert parts[-1].range_end == obj.size
            for prev, nxt in zip(parts, parts[1:]):
                assert prev.range_end == nxt.range_start  # gap-free, disjoint
            for i, part in enumerate(parts):
                assert part.object_size == obj.size
                assert part.partition_index == i
                assert part.partitions_of_object == len(parts)

    @settings(max_examples=100, deadline=None)
    @given(
        object_sizes=sizes,
        chunk_size=st.integers(min_value=1, max_value=8_192),
    )
    def test_chunk_size_bounds_every_partition(self, object_sizes, chunk_size):
        """With an explicit chunk size, every partition is at most that
        large, and only an object's final partition may be smaller."""
        objects = _summaries(object_sizes)
        for parts in _group_by_object(
            partition_objects(objects, chunk_size)
        ).values():
            parts = sorted(parts, key=lambda p: p.range_start)
            for part in parts[:-1]:
                assert part.size == chunk_size
            assert parts[-1].size <= chunk_size

    @settings(max_examples=50, deadline=None)
    @given(object_sizes=sizes)
    def test_no_chunk_size_means_whole_objects(self, object_sizes):
        """chunk_size=None partitions on the data-object granularity."""
        objects = _summaries(object_sizes)
        partitions = partition_objects(objects, None)
        assert len(partitions) == len(objects)
        assert all(p.is_whole_object for p in partitions)


class _StubCOS:
    """Just enough of the COSClient surface for discovery."""

    def __init__(self, objects: list[ObjectSummary]) -> None:
        self._objects = objects

    def head_bucket(self, bucket: str) -> None:
        pass

    def list_objects(self, bucket: str, prefix: str = ""):
        return [
            o
            for o in self._objects
            if o.bucket == bucket and o.key.startswith(prefix)
        ]

    def head_object(self, bucket: str, key: str) -> ObjectSummary:
        return next(
            o for o in self._objects if o.bucket == bucket and o.key == key
        )


class TestReducerGrouping:
    @settings(max_examples=50, deadline=None)
    @given(object_sizes=sizes, chunk_size=chunks, repeats=st.integers(1, 3))
    def test_one_reducer_group_per_object(self, object_sizes, chunk_size, repeats):
        """The ``reducer_one_per_object`` grouping (partitions keyed by
        object, the way map_reduce groups map futures) yields exactly one
        group per discovered object, whose ranges tile the object — and
        duplicate dataset entries do not double-cover anything."""
        objects = _summaries(object_sizes)
        cos = _StubCOS(objects)
        dataset = ["b"] * repeats + [f"b/{o.key}" for o in objects]

        discovered = discover_objects(cos, dataset)
        assert [(o.bucket, o.key) for o in discovered] == [
            (o.bucket, o.key) for o in objects
        ]

        partitions = build_partitions(cos, dataset, chunk_size)
        groups = _group_by_object(partitions)
        assert len(groups) == len(objects)
        for obj in objects:
            parts = sorted(
                groups[(obj.bucket, obj.key)], key=lambda p: p.range_start
            )
            covered = sum(p.size for p in parts)
            assert covered == obj.size  # exactly once: no overlap, no gap
            assert parts[0].range_start == 0
            assert parts[-1].range_end == obj.size
