"""Odds-and-ends edge cases across the core API."""

from __future__ import annotations

import pytest

import repro as pw


class TestEmptyAndDegenerate:
    def test_map_over_empty_bucket(self, env):
        env.storage.create_bucket("void")

        def main():
            executor = pw.ibm_cf_executor()
            return executor.map(lambda p: p, "cos://void")

        assert env.run(main) == []

    def test_map_over_generator(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda x: x * 2, (i for i in range(4)))
            return executor.get_result(futures)

        assert env.run(main) == [0, 2, 4, 6]

    def test_call_async_with_none_data(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            return executor.call_async(lambda x: x is None, None).result()

        assert env.run(main) is True

    def test_large_payload_roundtrip(self, env):
        payload = list(range(200_000))

        def main():
            executor = pw.ibm_cf_executor()
            return executor.call_async(lambda xs: sum(xs), payload).result()

        assert env.run(main) == sum(payload)

    def test_zero_byte_object_partition(self, env):
        env.storage.create_bucket("z")
        env.storage.put_object("z", "empty", b"")

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda p: (p.size, p.read()), "cos://z")
            return executor.get_result(futures)

        assert env.run(main) == [(0, b"")]

    def test_map_result_containing_bytes_and_nested(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            future = executor.call_async(
                lambda _: {"blob": b"\x00\xff", "nested": [(1, {"k": None})]},
                None,
            )
            return future.result()

        assert env.run(main) == {"blob": b"\x00\xff", "nested": [(1, {"k": None})]}


class TestFutureMisc:
    def test_done_then_result_consistency(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            future = executor.call_async(lambda x: x, 5)
            executor.wait([future])
            assert future.done()
            return future.result()

        assert env.run(main) == 5

    def test_result_idempotent(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            future = executor.call_async(lambda x: [x], 1)
            return future.result(), future.result(), future.result()

        a, b, c = env.run(main)
        assert a is b is c  # cached, same object

    def test_metadata_survives_pickle(self, env):
        import pickle

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(lambda p: p.size, "cos://meta-bucket")
            return futures

        env.storage.create_bucket("meta-bucket")
        env.storage.put_object("meta-bucket", "obj", b"xy")
        futures = env.run(main)
        clone = pickle.loads(pickle.dumps(futures[0]))
        assert clone.metadata["object_key"] == "obj"


class TestSequenceEdge:
    def test_sequence_with_value_returning_future_like_list(self, env):
        """A stage legitimately returning a list of plain values is not
        mistaken for a composition."""

        def main():
            future = pw.sequence([lambda x: [x, x + 1], lambda xs: sum(xs)], 3)
            return future.result()

        assert env.run(main) == 7

    def test_deeply_nested_mergesort_depth5(self, env):
        from repro.sort import serverless_mergesort

        def main():
            return serverless_mergesort(list(range(40, 0, -1)), depth=5).result()

        assert env.run(main) == list(range(1, 41))
