"""Tests for line-boundary-aware partition reads (input-split semantics).

The exactly-once invariant: over any chunking of a newline-delimited
object, every line is returned by exactly one partition's ``read_lines``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import build_partitions
from repro.cos import CloudObjectStorage, COSClient
from repro.net import LatencyModel, NetworkLink


def make_cos(kernel, payload: bytes):
    store = CloudObjectStorage(kernel)
    store.create_bucket("b")
    store.put_object("b", "obj", payload)
    link = NetworkLink(kernel, LatencyModel(rtt=0.0, jitter=0.0), seed=0)
    return COSClient(store, link)


def read_all_lines(kernel, payload: bytes, chunk_size: int) -> list[bytes]:
    def main():
        cos = make_cos(kernel, payload)
        parts = build_partitions(cos, "b", chunk_size)
        lines: list[bytes] = []
        for part in parts:
            part.cos = cos
            chunk = part.read_lines()
            lines.extend(line for line in chunk.split(b"\n") if line)
        return lines

    return kernel.run(main)


class TestExamples:
    def test_boundary_mid_line(self, kernel):
        payload = b"alpha\nbravo\ncharlie\n"
        # chunk size 8 cuts 'bravo' at offset 8
        lines = read_all_lines(kernel, payload, 8)
        assert sorted(lines) == [b"alpha", b"bravo", b"charlie"]

    def test_boundary_exactly_on_newline(self, kernel):
        payload = b"aaaaa\nbbbbb\nccccc\n"
        # chunk 6 lands exactly after each newline
        lines = read_all_lines(kernel, payload, 6)
        assert sorted(lines) == [b"aaaaa", b"bbbbb", b"ccccc"]

    def test_line_longer_than_chunk(self, kernel):
        payload = b"x" * 50 + b"\nshort\n"
        lines = read_all_lines(kernel, payload, 10)
        assert sorted(lines) == sorted([b"x" * 50, b"short"])

    def test_no_trailing_newline(self, kernel):
        payload = b"one\ntwo\nthree"
        lines = read_all_lines(kernel, payload, 5)
        assert sorted(lines) == [b"one", b"three", b"two"]

    def test_single_partition_returns_everything(self, kernel):
        payload = b"a\nb\n"
        lines = read_all_lines(kernel, payload, 1000)
        assert lines == [b"a", b"b"]

    def test_empty_object(self, kernel):
        lines = read_all_lines(kernel, b"", 10)
        assert lines == []

    @settings(max_examples=60, deadline=None)
    @given(
        line_lengths=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=30),
        chunk=st.integers(min_value=1, max_value=200),
        trailing_newline=st.booleans(),
    )
    def test_exactly_once_property(self, line_lengths, chunk, trailing_newline):
        """Every line appears in exactly one partition's read_lines."""
        from repro.vtime import Kernel

        kernel = Kernel()
        original = [
            bytes([65 + i % 26]) * n for i, n in enumerate(line_lengths)
        ]
        payload = b"\n".join(original) + (b"\n" if trailing_newline else b"")
        lines = read_all_lines(kernel, payload, chunk)
        assert sorted(lines) == sorted(original)


class TestWorkerIntegration:
    def test_exact_comment_counts_across_chunkings(self, cloud):
        """Tone analysis over read_lines counts each comment exactly once,
        independent of chunk size."""
        import repro as pw
        from repro.analytics.tone import analyze_csv_reviews

        def run(chunk_size, seed):
            env = cloud(seed=seed)
            env.storage.create_bucket("rv")
            payload = b"".join(
                b"1.0,2.0,great clean stay number %d\n" % i for i in range(100)
            )
            env.storage.put_object("rv", "reviews.csv", payload)

            def count(partition):
                stats, _points = analyze_csv_reviews(partition.read_lines())
                return stats.comments

            def main():
                executor = pw.ibm_cf_executor()
                reducer = executor.map_reduce(
                    count, "cos://rv", sum, chunk_size=chunk_size
                )
                return executor.get_result(reducer)

            return env.run(main)

        assert run(None, 41) == 100
        assert run(512, 42) == 100
        assert run(100, 43) == 100
        assert run(37, 44) == 100
