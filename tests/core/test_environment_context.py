"""Tests for CloudEnvironment assembly and the ambient-context machinery."""

from __future__ import annotations

import threading

import pytest

import repro as pw
from repro.core import context as ambient
from repro.core.environment import CloudEnvironment
from repro.core.errors import NoActiveEnvironmentError


class TestEnvironmentAssembly:
    def test_create_builds_all_services(self):
        env = CloudEnvironment.create(seed=1)
        assert env.storage.bucket_exists(env.config.storage_bucket)
        assert env.platform.environment is env
        assert env.registry.exists("python-jessie:3")
        assert env.broker is not None

    def test_run_returns_value_and_clears_context(self):
        env = CloudEnvironment.create(seed=2)
        assert env.run(lambda: 99) == 99
        assert ambient.current_context() is None

    def test_run_with_arguments(self):
        env = CloudEnvironment.create(seed=3)
        assert env.run(lambda a, b: a + b, 2, 3) == 5

    def test_client_links_are_independent_streams(self):
        env = CloudEnvironment.create(seed=4)
        a, b = env.new_client_link(), env.new_client_link()
        assert a is not b

    def test_now_tracks_kernel(self):
        env = CloudEnvironment.create(seed=5)

        def main():
            pw.sleep(12)
            return env.now()

        assert env.run(main) == 12.0

    def test_ensure_runner_action_idempotent(self):
        env = CloudEnvironment.create(seed=6)
        name1 = env.ensure_runner_action("python-jessie:3", 256, 600)
        name2 = env.ensure_runner_action("python-jessie:3", 256, 600)
        assert name1 == name2
        actions = env.platform.namespace("guest").list_actions()
        assert actions.count(name1) == 1

    def test_executor_factory_kwargs(self):
        env = CloudEnvironment.create(seed=7)

        def main():
            executor = env.executor(invoker_pool_size=3)
            return executor.config.invoker_pool_size

        assert env.run(main) == 3


class TestAmbientContext:
    def test_push_pop(self):
        marker = object()
        ambient.push_context(marker, in_cloud=False)
        try:
            ctx = ambient.current_context()
            assert ctx.environment is marker
            assert ctx.in_cloud is False
        finally:
            ambient.pop_context()
        assert ambient.current_context() is None

    def test_nested_contexts_stack(self):
        ambient.push_context("outer", in_cloud=False)
        ambient.push_context("inner", in_cloud=True)
        try:
            assert ambient.current_context().environment == "inner"
            ambient.pop_context()
            assert ambient.current_context().environment == "outer"
        finally:
            ambient.pop_context()

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            ambient.pop_context()

    def test_require_context_error_message(self):
        with pytest.raises(NoActiveEnvironmentError, match="CloudEnvironment.run"):
            ambient.require_context()

    def test_contexts_are_per_thread(self):
        seen = {}
        ambient.push_context("main-thread", in_cloud=False)
        try:

            def other():
                seen["other"] = ambient.current_context()

            t = threading.Thread(target=other)
            t.start()
            t.join()
        finally:
            ambient.pop_context()
        assert seen["other"] is None

    def test_executor_inherits_active_environment(self):
        env = CloudEnvironment.create(seed=8)

        def main():
            executor = pw.ibm_cf_executor()
            return executor.environment is env

        assert env.run(main) is True

    def test_two_environments_do_not_leak(self):
        env1 = CloudEnvironment.create(seed=9)
        env2 = CloudEnvironment.create(seed=10)

        def probe():
            return pw.ibm_cf_executor().environment

        assert env1.run(probe) is env1
        assert env2.run(probe) is env2
