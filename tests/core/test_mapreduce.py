"""Tests for map_reduce: data discovery, partitioning, reducers (§4.3)."""

from __future__ import annotations

import pytest

import repro as pw
from repro.core.errors import PyWrenError


def put_text(env, bucket, objects):
    env.storage.create_bucket(bucket, exist_ok=True)
    for key, text in objects.items():
        env.storage.put_object(bucket, key, text.encode())


def count_bytes(partition):
    return len(partition.read())


def total(results):
    return sum(results)


class TestMapReduceValues:
    def test_single_reducer_over_values(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            reducer = executor.map_reduce(lambda x: x * x, [1, 2, 3, 4], total)
            return executor.get_result(reducer)

        assert env.run(main) == 30

    def test_reducer_receives_ordered_results(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            reducer = executor.map_reduce(
                lambda x: x, [3, 1, 2], lambda results: results
            )
            return executor.get_result(reducer)

        assert env.run(main) == [3, 1, 2]

    def test_empty_dataset_raises(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            with pytest.raises(PyWrenError):
                executor.map_reduce(lambda x: x, [], total)
            return True

        assert env.run(main)

    def test_reducer_one_per_object_requires_spec(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            with pytest.raises(ValueError):
                executor.map_reduce(
                    lambda x: x, [1, 2], total, reducer_one_per_object=True
                )
            return True

        assert env.run(main)


class TestMapReduceStorage:
    def test_discovery_over_bucket(self, env):
        put_text(env, "data", {"a.txt": "xx", "b.txt": "yyy", "c.txt": "z"})

        def main():
            executor = pw.ibm_cf_executor()
            reducer = executor.map_reduce(count_bytes, "cos://data", total)
            return executor.get_result(reducer)

        assert env.run(main) == 6

    def test_chunking_produces_expected_executors(self, env):
        put_text(env, "data", {"big.txt": "x" * 1000})

        def main():
            executor = pw.ibm_cf_executor()
            reducer = executor.map_reduce(
                count_bytes, "cos://data", total, chunk_size=300
            )
            result = executor.get_result(reducer)
            maps = [f for f in executor.futures if f.callset_id.startswith("M")]
            return result, len(maps)

        result, n_maps = env.run(main)
        assert result == 1000  # all bytes covered exactly once
        assert n_maps == 4  # ceil(1000/300)

    def test_single_object_spec(self, env):
        put_text(env, "data", {"a.txt": "hello", "b.txt": "ignored"})

        def main():
            executor = pw.ibm_cf_executor()
            reducer = executor.map_reduce(count_bytes, "cos://data/a.txt", total)
            return executor.get_result(reducer)

        assert env.run(main) == 5

    def test_map_function_sees_partition_fields(self, env):
        put_text(env, "data", {"a.txt": "0123456789"})

        def main():
            executor = pw.ibm_cf_executor()

            def describe(partition):
                return (
                    partition.key,
                    partition.range_start,
                    partition.range_end,
                    partition.object_size,
                    partition.read(),
                )

            futures = executor.map(describe, "cos://data", chunk_size=6)
            return executor.get_result(futures)

        rows = env.run(main)
        assert rows == [
            ("a.txt", 0, 6, 10, b"012345"),
            ("a.txt", 6, 10, 10, b"6789"),
        ]

    def test_default_chunk_size_from_config(self, cloud):
        env = cloud()
        env.config = env.config.with_overrides(chunk_size=4)
        put_text(env, "data", {"a.txt": "0123456789"})

        def main():
            executor = pw.ibm_cf_executor()
            futures = executor.map(count_bytes, "cos://data")
            return len(futures), executor.get_result(futures)

        n, sizes = env.run(main)
        assert n == 3  # ceil(10/4)
        assert sizes == [4, 4, 2]


class TestReducerPerObject:
    def test_one_reducer_per_object_key(self, env):
        put_text(
            env,
            "cities",
            {"nyc.txt": "a" * 100, "paris.txt": "b" * 250, "rome.txt": "c" * 30},
        )

        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce(
                count_bytes,
                "cos://cities",
                total,
                chunk_size=100,
                reducer_one_per_object=True,
            )
            keys = [r.metadata["object_key"] for r in reducers]
            values = executor.get_result(reducers)
            return dict(zip(keys, values))

        assert env.run(main) == {
            "nyc.txt": 100,
            "paris.txt": 250,
            "rome.txt": 30,
        }

    def test_reducer_waits_for_all_its_partials(self, env):
        """The §4.3 contract: a reducer processes all partial results."""
        put_text(env, "cities", {"x.txt": "d" * 500})

        def main():
            executor = pw.ibm_cf_executor()

            def staggered(partition):
                pw.sleep(partition.partition_index * 10.0)
                return partition.size

            reducers = executor.map_reduce(
                staggered,
                "cos://cities",
                lambda results: (len(results), sum(results)),
                chunk_size=100,
                reducer_one_per_object=True,
            )
            return executor.get_result(reducers)

        assert env.run(main) == [(5, 500)]

    def test_returns_list_even_for_single_object(self, env):
        put_text(env, "solo", {"only.txt": "e" * 10})

        def main():
            executor = pw.ibm_cf_executor()
            reducers = executor.map_reduce(
                count_bytes,
                "cos://solo",
                total,
                reducer_one_per_object=True,
            )
            assert isinstance(reducers, list)
            return executor.get_result(reducers)

        assert env.run(main) == [10]
