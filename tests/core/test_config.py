"""Unit tests for client configuration."""

from __future__ import annotations

import pytest

from repro.config import ExchangeConfig, InvokerMode, PyWrenConfig


class TestDefaults:
    def test_defaults_valid(self):
        PyWrenConfig().validate()

    def test_paper_aligned_defaults(self):
        config = PyWrenConfig()
        assert config.runtime == "python-jessie:3"
        assert config.runtime_timeout_s == 600.0
        assert config.invoker_mode == InvokerMode.LOCAL
        assert config.massive_group_size == 100  # §5.1's groups of 100
        assert config.chunk_size is None  # object-granularity by default


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"invoker_mode": "bogus"},
            {"invoker_pool_size": 0},
            {"massive_group_size": 0},
            {"remote_invoker_pool_size": -1},
            {"poll_interval": 0},
            {"chunk_size": 0},
            {"chunk_size": -10},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PyWrenConfig(**kwargs).validate()

    def test_all_invoker_modes_accepted(self):
        for mode in InvokerMode.ALL:
            PyWrenConfig(invoker_mode=mode).validate()


class TestExchangeConfig:
    def test_default_is_direct_cos(self):
        config = PyWrenConfig()
        assert config.exchange.backend == "cos"
        config.validate()

    def test_all_backends_accepted(self):
        for backend in ExchangeConfig.BACKENDS:
            PyWrenConfig(exchange=ExchangeConfig(backend=backend)).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "redis"},
            {"vm_nodes": 0},
            {"vm_node_memory_bytes": -1},
            {"vm_startup_s": -0.5},
            {"vm_bandwidth_bps": 0},
            {"vm_ring_vnodes": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PyWrenConfig(exchange=ExchangeConfig(**kwargs)).validate()

    def test_from_dict_nested_section(self):
        config = PyWrenConfig.from_dict(
            {"exchange": {"backend": "vm", "vm_nodes": 5, "vm_startup_s": 2.0}}
        )
        assert isinstance(config.exchange, ExchangeConfig)
        assert config.exchange.backend == "vm"
        assert config.exchange.vm_nodes == 5
        assert config.exchange.vm_startup_s == 2.0

    def test_from_dict_unknown_exchange_key_rejected(self):
        with pytest.raises(ValueError, match="exchange"):
            PyWrenConfig.from_dict({"exchange": {"nodez": 3}})

    def test_roundtrips_through_dict(self):
        config = PyWrenConfig(exchange=ExchangeConfig(backend="cached-cos"))
        again = PyWrenConfig.from_dict(config.to_dict())
        assert again.exchange == config.exchange


class TestOverrides:
    def test_with_overrides_copies(self):
        base = PyWrenConfig()
        derived = base.with_overrides(runtime="custom:1", poll_interval=0.1)
        assert derived.runtime == "custom:1"
        assert derived.poll_interval == 0.1
        assert base.runtime == "python-jessie:3"  # original untouched

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            PyWrenConfig().with_overrides(invoker_mode="nope")

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            PyWrenConfig().with_overrides(not_a_field=1)
