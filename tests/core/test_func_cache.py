"""Tests for content-addressed function upload caching."""

from __future__ import annotations

import pytest

import repro as pw


def shared_fn(x):
    return x * 2


class TestFuncCache:
    def _func_keys(self, env, executor):
        prefix = f"{executor.config.storage_prefix}/{executor.executor_id}/funcs/"
        return env.storage.list_keys(executor.config.storage_bucket, prefix)

    def test_same_function_uploaded_once(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            executor.get_result(executor.map(shared_fn, [1, 2]))
            executor.get_result(executor.map(shared_fn, [3, 4]))
            executor.get_result(executor.map(shared_fn, [5]))
            return self._func_keys(env, executor)

        keys = env.run(main)
        assert len(keys) == 1  # three callsets, one shared func object

    def test_different_functions_get_distinct_objects(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            executor.get_result(executor.map(shared_fn, [1]))
            executor.get_result(executor.map(lambda x: x + 1, [1]))
            return self._func_keys(env, executor)

        assert len(env.run(main)) == 2

    def test_results_still_correct_across_cached_submissions(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            first = executor.get_result(executor.map(shared_fn, [1, 2]))
            second = executor.get_result(executor.map(shared_fn, [10]))
            return first, second

        assert env.run(main) == ([2, 4], [20])

    def test_cache_saves_wan_transfer_time(self, cloud):
        """The second map of a closure over a large constant is cheaper."""
        big = list(range(50_000))

        def heavy(x):
            return x + len(big)

        def submit_time(env, repeat):
            def main():
                executor = pw.ibm_cf_executor()
                executor.get_result(executor.map(heavy, [1]))
                t0 = pw.now()
                for _ in range(repeat):
                    executor.get_result(executor.map(heavy, [1]))
                return pw.now() - t0

            return env.run(main)

        cached = submit_time(cloud(seed=71), repeat=2)
        # a fresh executor per map re-uploads every time
        def uncached_main(env):
            def main():
                pw.ibm_cf_executor().get_result(
                    pw.ibm_cf_executor().map(heavy, [1])
                )
                t0 = pw.now()
                for _ in range(2):
                    executor = pw.ibm_cf_executor()
                    executor.get_result(executor.map(heavy, [1]))
                return pw.now() - t0

            return env.run(main)

        uncached = uncached_main(cloud(seed=71))
        assert cached < uncached

    def test_clean_removes_shared_funcs(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            executor.get_result(executor.map(shared_fn, [1]))
            executor.clean()
            return self._func_keys(env, executor)

        assert env.run(main) == []
