"""Unit tests for virtual-time synchronization primitives."""

from __future__ import annotations

import pytest

from repro.vtime import (
    Kernel,
    QueueEmpty,
    VCondition,
    VEvent,
    VQueue,
    VSemaphore,
    gather,
    sleep,
)


class TestVEvent:
    def test_set_before_wait(self, kernel):
        def main():
            ev = VEvent(kernel)
            ev.set()
            assert ev.wait(timeout=1) is True
            return kernel.now()

        assert kernel.run(main) == 0.0

    def test_wait_blocks_until_set(self, kernel):
        def main():
            ev = VEvent(kernel)

            def setter():
                sleep(7)
                ev.set()

            kernel.spawn(setter)
            assert ev.wait() is True
            return kernel.now()

        assert kernel.run(main) == 7.0

    def test_wait_timeout_returns_false(self, kernel):
        def main():
            ev = VEvent(kernel)
            result = ev.wait(timeout=3)
            return result, kernel.now()

        assert kernel.run(main) == (False, 3.0)

    def test_clear_resets(self, kernel):
        def main():
            ev = VEvent(kernel)
            ev.set()
            assert ev.is_set()
            ev.clear()
            assert not ev.is_set()
            return ev.wait(timeout=1)

        assert kernel.run(main) is False

    def test_set_wakes_all_waiters(self, kernel):
        def main():
            ev = VEvent(kernel)
            woke = []

            def waiter(i):
                ev.wait()
                woke.append(i)

            tasks = [kernel.spawn(waiter, i) for i in range(5)]
            sleep(2)
            ev.set()
            gather(tasks)
            return sorted(woke)

        assert kernel.run(main) == [0, 1, 2, 3, 4]


class TestVSemaphore:
    def test_initial_value(self, kernel):
        assert VSemaphore(kernel, 3).value == 3

    def test_negative_value_rejected(self, kernel):
        with pytest.raises(ValueError):
            VSemaphore(kernel, -1)

    def test_limits_concurrency(self, kernel):
        def main():
            sem = VSemaphore(kernel, 2)
            finish_times = []

            def job():
                with sem:
                    sleep(5)
                    finish_times.append(kernel.now())

            gather([kernel.spawn(job) for _ in range(4)])
            return sorted(finish_times)

        assert kernel.run(main) == [5.0, 5.0, 10.0, 10.0]

    def test_acquire_timeout(self, kernel):
        def main():
            sem = VSemaphore(kernel, 0)
            ok = sem.acquire(timeout=4)
            return ok, kernel.now()

        assert kernel.run(main) == (False, 4.0)

    def test_release_multiple(self, kernel):
        def main():
            sem = VSemaphore(kernel, 0)
            sem.release(3)
            return sem.value

        assert kernel.run(main) == 3


class TestVQueue:
    def test_put_get_fifo(self, kernel):
        def main():
            q = VQueue(kernel)
            for i in range(5):
                q.put(i)
            return [q.get() for _ in range(5)]

        assert kernel.run(main) == [0, 1, 2, 3, 4]

    def test_get_blocks_for_producer(self, kernel):
        def main():
            q = VQueue(kernel)

            def producer():
                sleep(9)
                q.put("item")

            kernel.spawn(producer)
            item = q.get()
            return item, kernel.now()

        assert kernel.run(main) == ("item", 9.0)

    def test_get_timeout_raises(self, kernel):
        def main():
            q = VQueue(kernel)
            with pytest.raises(QueueEmpty):
                q.get(timeout=2)
            return kernel.now()

        assert kernel.run(main) == 2.0

    def test_bounded_put_blocks(self, kernel):
        def main():
            q = VQueue(kernel, maxsize=1)
            q.put("a")

            def consumer():
                sleep(6)
                q.get()

            kernel.spawn(consumer)
            assert q.put("b") is True
            return kernel.now()

        assert kernel.run(main) == 6.0

    def test_bounded_put_timeout(self, kernel):
        def main():
            q = VQueue(kernel, maxsize=1)
            q.put("a")
            return q.put("b", timeout=3), kernel.now()

        assert kernel.run(main) == (False, 3.0)

    def test_len(self, kernel):
        def main():
            q = VQueue(kernel)
            q.put(1)
            q.put(2)
            return len(q)

        assert kernel.run(main) == 2


class TestVCondition:
    def test_wait_notify(self, kernel):
        def main():
            cond = VCondition(kernel)
            state = {"ready": False}

            def notifier():
                sleep(4)
                with cond:
                    state["ready"] = True
                    cond.notify()

            kernel.spawn(notifier)
            with cond:
                while not state["ready"]:
                    cond.wait()
            return kernel.now()

        assert kernel.run(main) == 4.0

    def test_wait_for_predicate_with_timeout(self, kernel):
        def main():
            cond = VCondition(kernel)
            with cond:
                ok = cond.wait_for(lambda: False, timeout=5)
            return ok, kernel.now()

        ok, t = kernel.run(main)
        assert ok is False
        assert t == 5.0

    def test_notify_wakes_limited_count(self, kernel):
        def main():
            cond = VCondition(kernel)
            woke = []

            def waiter(i):
                with cond:
                    if cond.wait(timeout=100):
                        woke.append(i)

            tasks = [kernel.spawn(waiter, i) for i in range(3)]
            sleep(1)
            with cond:
                cond.notify(2)
            gather(tasks)
            return len(woke), kernel.now()

        count, t = kernel.run(main)
        assert count == 2
        assert t == 100.0  # third waiter timed out 100 s after waiting began

    def test_gather_empty(self, kernel):
        def main():
            return gather([])

        assert kernel.run(main) == []
