"""Unit tests for the virtual-time kernel."""

from __future__ import annotations

import threading

import pytest

from repro.vtime import (
    DeadlockError,
    Kernel,
    NotInKernelError,
    VEvent,
    current_kernel,
    current_task,
    gather,
    now,
    sleep,
)


class TestBasics:
    def test_time_starts_at_zero(self, kernel):
        assert kernel.now() == 0.0

    def test_custom_start_time(self):
        assert Kernel(start_time=100.0).now() == 100.0

    def test_run_returns_result(self, kernel):
        assert kernel.run(lambda: 42) == 42

    def test_run_propagates_exception(self, kernel):
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            kernel.run(boom)

    def test_sleep_advances_virtual_time(self, kernel):
        def main():
            sleep(12.5)
            return kernel.now()

        assert kernel.run(main) == 12.5

    def test_sleep_zero_is_noop_in_time(self, kernel):
        def main():
            sleep(0)
            return kernel.now()

        assert kernel.run(main) == 0.0

    def test_negative_sleep_clamps_to_zero(self, kernel):
        def main():
            sleep(-5)
            return kernel.now()

        assert kernel.run(main) == 0.0

    def test_sequential_sleeps_accumulate(self, kernel):
        def main():
            for _ in range(10):
                sleep(1)
            return kernel.now()

        assert kernel.run(main) == 10.0

    def test_wall_clock_far_smaller_than_virtual(self, kernel):
        import time

        t0 = time.monotonic()

        def main():
            sleep(3600.0)

        kernel.run(main)
        assert time.monotonic() - t0 < 5.0
        assert kernel.now() == 3600.0


class TestSpawn:
    def test_spawn_runs_concurrently_in_virtual_time(self, kernel):
        def worker():
            sleep(10)
            return kernel.now()

        def main():
            tasks = [kernel.spawn(worker) for _ in range(5)]
            return gather(tasks)

        assert kernel.run(main) == [10.0] * 5
        assert kernel.now() == 10.0

    def test_spawn_results_in_order(self, kernel):
        def worker(i):
            sleep(10 - i)
            return i

        def main():
            return gather([kernel.spawn(worker, i) for i in range(5)])

        assert kernel.run(main) == [0, 1, 2, 3, 4]

    def test_spawn_exception_surfaces_via_gather(self, kernel):
        def bad():
            sleep(1)
            raise RuntimeError("task failed")

        def main():
            gather([kernel.spawn(bad)])

        with pytest.raises(RuntimeError, match="task failed"):
            kernel.run(main)

    def test_join_returns_true_when_finished(self, kernel):
        def worker():
            sleep(5)
            return "done"

        def main():
            task = kernel.spawn(worker)
            assert task.join() is True
            return task.result()

        assert kernel.run(main) == "done"

    def test_join_timeout_expires(self, kernel):
        def worker():
            sleep(100)

        def main():
            task = kernel.spawn(worker)
            finished = task.join(timeout=10)
            return finished, kernel.now()

        finished, t = kernel.run(main)
        assert finished is False
        assert t == 10.0

    def test_task_result_before_finish_raises(self, kernel):
        def worker():
            sleep(50)

        def main():
            task = kernel.spawn(worker)
            with pytest.raises(NotInKernelError):
                task.result()
            task.join()

        kernel.run(main)

    def test_spawned_total_counts(self, kernel):
        def main():
            gather([kernel.spawn(lambda: None) for _ in range(7)])

        kernel.run(main)
        assert kernel.spawned_total == 8  # 7 workers + main

    def test_nested_spawn(self, kernel):
        def leaf():
            sleep(3)
            return 1

        def mid():
            return sum(gather([kernel.spawn(leaf) for _ in range(2)]))

        def main():
            return sum(gather([kernel.spawn(mid) for _ in range(2)]))

        assert kernel.run(main) == 4
        assert kernel.now() == 3.0

    def test_many_tasks_scale(self, kernel):
        def worker():
            sleep(60)

        def main():
            gather([kernel.spawn(worker) for _ in range(500)])
            return kernel.now()

        assert kernel.run(main) == 60.0


class TestAmbient:
    def test_current_kernel_inside(self, kernel):
        def main():
            return current_kernel() is kernel

        assert kernel.run(main) is True

    def test_current_kernel_outside_is_none(self):
        assert current_kernel() is None
        assert current_task() is None

    def test_now_outside_kernel_is_wall_clock(self):
        import time

        assert abs(now() - time.monotonic()) < 1.0

    def test_sleep_primitive_requires_kernel(self, kernel):
        with pytest.raises(NotInKernelError):
            kernel.sleep(1)

    def test_task_names(self, kernel):
        def main():
            task = kernel.spawn(lambda: None, name="my-task")
            task.join()
            return task.name

        assert kernel.run(main) == "my-task"


class TestDeadlock:
    def test_wait_without_timer_deadlocks(self, kernel):
        def main():
            VEvent(kernel).wait()

        with pytest.raises(DeadlockError):
            kernel.run(main)

    def test_deadlock_message_names_tasks(self, kernel):
        def main():
            VEvent(kernel).wait()

        with pytest.raises(DeadlockError, match="main"):
            kernel.run(main)

    def test_two_tasks_waiting_on_each_other(self, kernel):
        ev1, ev2 = None, None

        def main():
            nonlocal ev1, ev2
            ev1, ev2 = VEvent(kernel), VEvent(kernel)

            def a():
                ev1.wait()
                ev2.set()

            task = kernel.spawn(a)
            ev2.wait()  # deadlock: nobody sets ev1
            task.join()

        with pytest.raises(DeadlockError):
            kernel.run(main)


class TestDeterminism:
    def test_same_seeded_run_is_reproducible(self):
        def experiment() -> float:
            kernel = Kernel()

            def worker(i):
                sleep(i * 0.7)
                sleep((i * 31 % 7) * 0.3)
                return kernel.now()

            def main():
                return tuple(gather([kernel.spawn(worker, i) for i in range(20)]))

            return kernel.run(main)

        assert experiment() == experiment()

    def test_timer_ordering_is_fifo_for_equal_times(self, kernel):
        order = []

        def worker(i):
            sleep(5)
            order.append(i)

        def main():
            gather([kernel.spawn(worker, i) for i in range(10)])

        kernel.run(main)
        assert order == list(range(10))
