"""Property-based tests of the virtual-time kernel's core invariants."""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vtime import Kernel, VSemaphore, gather, now, sleep, vjoin, vsleep

# schedules: each task gets a list of sleep durations
schedules = st.lists(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=5
    ),
    min_size=1,
    max_size=8,
)


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(schedule=schedules)
    def test_final_time_is_longest_chain(self, schedule):
        """With all tasks spawned at t=0, the kernel ends at the max of the
        per-task sleep sums."""
        kernel = Kernel()

        def worker(durations):
            for duration in durations:
                sleep(duration)
            return now()

        def main():
            return gather([kernel.spawn(worker, d) for d in schedule])

        finish_times = kernel.run(main)
        for finish, durations in zip(finish_times, schedule):
            assert finish == sum(durations)
        expected = max(sum(d) for d in schedule)
        assert kernel.now() == expected

    @settings(max_examples=30, deadline=None)
    @given(schedule=schedules)
    def test_time_is_monotonic_per_task(self, schedule):
        kernel = Kernel()
        violations = []

        def worker(durations):
            last = now()
            for duration in durations:
                sleep(duration)
                current = now()
                if current < last:
                    violations.append((last, current))
                last = current

        def main():
            gather([kernel.spawn(worker, d) for d in schedule])

        kernel.run(main)
        assert violations == []

    @settings(max_examples=25, deadline=None)
    @given(
        n_tasks=st.integers(min_value=1, max_value=12),
        permits=st.integers(min_value=1, max_value=12),
        duration=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    def test_semaphore_batching_law(self, n_tasks, permits, duration):
        """n tasks through a k-semaphore, each holding for d, finish at
        ceil(n/k) * d — the law the FaaS concurrency limit relies on."""
        kernel = Kernel()

        def main():
            sem = VSemaphore(kernel, permits)

            def job():
                with sem:
                    sleep(duration)

            gather([kernel.spawn(job) for _ in range(n_tasks)])
            return now()

        import pytest

        batches = -(-n_tasks // permits)
        assert kernel.run(main) == pytest.approx(batches * duration)

    @settings(max_examples=20, deadline=None)
    @given(
        seed_durations=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=2,
            max_size=10,
        )
    )
    def test_reproducibility(self, seed_durations):
        """The same schedule yields byte-identical timing twice."""

        def experiment():
            kernel = Kernel()

            def worker(duration):
                sleep(duration)
                return now()

            def main():
                return tuple(
                    gather([kernel.spawn(worker, d) for d in seed_durations])
                )

            return kernel.run(main)

        assert experiment() == experiment()


# -------------------------------------------------------------------------
# Hybrid-scheduler properties: model tasks (generator coroutines on the
# kernel's event loop) interleaved with thread tasks.  Random programs of
# sleeps / spawns / joins across both task kinds must (a) fire timers in
# (time, seq) order, (b) never deadlock while runnable work exists, and
# (c) replay to identical event sequences for identical programs.
# -------------------------------------------------------------------------

# A random task tree: task 0 is the root; every task i > 0 names a parent
# p(i) < i that spawns it.  Each task is independently a model task or a
# thread task, sleeps a random amount before and after spawning each child,
# and either joins each child explicitly or leaves it to the kernel's
# non-daemon drain.
@st.composite
def task_trees(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    dur = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
    tree = []
    for i in range(n):
        tree.append(
            {
                "parent": 0 if i == 0 else draw(st.integers(0, i - 1)),
                "model": draw(st.booleans()),
                "pre_sleep": draw(dur),
                "post_sleep": draw(dur),
                "join_children": draw(st.booleans()),
            }
        )
    return tree


def _interpret_tree(tree):
    """Run one task tree; returns ({task_index: [times...]}, final_now).

    Each task appends kernel.now() to its own log after every blocking op,
    so the logs are race-free regardless of which OS threads run what.
    """
    kernel = Kernel()
    children = {i: [j for j in range(len(tree)) if j > i and tree[j]["parent"] == i]
                for i in range(len(tree))}
    logs = {i: [] for i in range(len(tree))}

    def spawn(i):
        spec = tree[i]
        if spec["model"]:
            return kernel.spawn_model(model_body, i)
        return kernel.spawn(thread_body, i)

    def model_body(i):
        spec = tree[i]
        log = logs[i]
        log.append(now())
        yield vsleep(spec["pre_sleep"])
        log.append(now())
        handles = [spawn(j) for j in children[i]]
        if spec["join_children"]:
            for handle in handles:
                yield vjoin(handle)
                log.append(now())
        yield vsleep(spec["post_sleep"])
        log.append(now())

    def thread_body(i):
        spec = tree[i]
        log = logs[i]
        log.append(now())
        sleep(spec["pre_sleep"])
        log.append(now())
        handles = [spawn(j) for j in children[i]]
        if spec["join_children"]:
            for handle in handles:
                handle.join()
                log.append(now())
        sleep(spec["post_sleep"])
        log.append(now())

    def main():
        root = spawn(0)
        root.join()

    kernel.run(main)
    return logs, kernel.now()


class TestHybridScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_model_timers_fire_in_time_seq_order(self, durations):
        """Model-task wakeups happen in (time, spawn-seq) order.

        All model tasks step on the kernel's single loop thread, so the
        append order below *is* the firing order — ties on time must break
        by registration sequence.
        """
        kernel = Kernel()
        fired = []

        def sleeper(idx, duration):
            yield vsleep(duration)
            fired.append((duration, idx))

        def main():
            tasks = [
                kernel.spawn_model(sleeper, i, d)
                for i, d in enumerate(durations)
            ]
            for task in tasks:
                task.join()

        kernel.run(main)
        assert fired == sorted(fired)

    @settings(max_examples=30, deadline=None)
    @given(tree=task_trees())
    def test_mixed_tree_completes_with_monotonic_time(self, tree):
        """Random model/thread trees finish (no deadlock) and every task
        observes monotonically non-decreasing virtual time."""
        logs, final = _interpret_tree(tree)
        for log in logs.values():
            assert log, "every spawned task ran to completion"
            assert log == sorted(log)
        # run() drains all non-daemon tasks: the clock ends at the last
        # event any task observed
        assert final == max(max(log) for log in logs.values())

    @settings(max_examples=15, deadline=None)
    @given(tree=task_trees())
    def test_mixed_tree_replays_identically(self, tree):
        """The same program produces the same event sequence every time,
        independent of OS-thread scheduling."""
        assert _interpret_tree(tree) == _interpret_tree(tree)

    @settings(max_examples=20, deadline=None)
    @given(
        n_model=st.integers(min_value=0, max_value=10),
        n_thread=st.integers(min_value=0, max_value=6),
        duration=st.floats(min_value=0.1, max_value=30.0, allow_nan=False),
    )
    def test_blocked_model_tasks_hold_no_threads(self, n_model, n_thread, duration):
        """While every task is blocked in vsleep, the OS-thread count is
        bounded by the thread tasks plus kernel overhead — model tasks
        contribute nothing.  This is the hybrid scheduler's core claim."""
        kernel = Kernel()
        observed = []

        def model_job():
            yield vsleep(duration)

        def thread_job():
            sleep(duration)

        def probe():
            # runs while all n_model + n_thread tasks are mid-sleep
            yield vsleep(duration / 2)
            observed.append(threading.active_count())

        def main():
            tasks = [kernel.spawn_model(model_job) for _ in range(n_model)]
            tasks += [kernel.spawn(thread_job) for _ in range(n_thread)]
            tasks.append(kernel.spawn_model(probe))
            for task in tasks:
                task.join()

        before = threading.active_count()
        kernel.run(main)
        # main's thread task + each thread_job holds a thread; the loop
        # thread and a little pool slack is all the kernel may add
        assert observed[0] <= before + n_thread + 4
