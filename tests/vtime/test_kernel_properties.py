"""Property-based tests of the virtual-time kernel's core invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vtime import Kernel, VSemaphore, gather, now, sleep

# schedules: each task gets a list of sleep durations
schedules = st.lists(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=5
    ),
    min_size=1,
    max_size=8,
)


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(schedule=schedules)
    def test_final_time_is_longest_chain(self, schedule):
        """With all tasks spawned at t=0, the kernel ends at the max of the
        per-task sleep sums."""
        kernel = Kernel()

        def worker(durations):
            for duration in durations:
                sleep(duration)
            return now()

        def main():
            return gather([kernel.spawn(worker, d) for d in schedule])

        finish_times = kernel.run(main)
        for finish, durations in zip(finish_times, schedule):
            assert finish == sum(durations)
        expected = max(sum(d) for d in schedule)
        assert kernel.now() == expected

    @settings(max_examples=30, deadline=None)
    @given(schedule=schedules)
    def test_time_is_monotonic_per_task(self, schedule):
        kernel = Kernel()
        violations = []

        def worker(durations):
            last = now()
            for duration in durations:
                sleep(duration)
                current = now()
                if current < last:
                    violations.append((last, current))
                last = current

        def main():
            gather([kernel.spawn(worker, d) for d in schedule])

        kernel.run(main)
        assert violations == []

    @settings(max_examples=25, deadline=None)
    @given(
        n_tasks=st.integers(min_value=1, max_value=12),
        permits=st.integers(min_value=1, max_value=12),
        duration=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    def test_semaphore_batching_law(self, n_tasks, permits, duration):
        """n tasks through a k-semaphore, each holding for d, finish at
        ceil(n/k) * d — the law the FaaS concurrency limit relies on."""
        kernel = Kernel()

        def main():
            sem = VSemaphore(kernel, permits)

            def job():
                with sem:
                    sleep(duration)

            gather([kernel.spawn(job) for _ in range(n_tasks)])
            return now()

        import pytest

        batches = -(-n_tasks // permits)
        assert kernel.run(main) == pytest.approx(batches * duration)

    @settings(max_examples=20, deadline=None)
    @given(
        seed_durations=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=2,
            max_size=10,
        )
    )
    def test_reproducibility(self, seed_durations):
        """The same schedule yields byte-identical timing twice."""

        def experiment():
            kernel = Kernel()

            def worker(duration):
                sleep(duration)
                return now()

            def main():
                return tuple(
                    gather([kernel.spawn(worker, d) for d in seed_durations])
                )

            return kernel.run(main)

        assert experiment() == experiment()
