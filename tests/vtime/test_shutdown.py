"""Kernel lifecycle: daemon tasks, shutdown, post-run behaviour."""

from __future__ import annotations

import pytest

from repro.vtime import (
    DeadlockError,
    Kernel,
    KernelShutdownError,
    VQueue,
    sleep,
)


class TestDaemonTasks:
    def test_daemon_does_not_keep_run_alive(self, kernel):
        stopped = []

        def background():
            queue = VQueue(kernel)
            try:
                queue.get()  # waits forever
            except (KernelShutdownError, DeadlockError):
                stopped.append(True)
                raise

        def main():
            kernel.spawn(background, daemon=True)
            sleep(5)
            return kernel.now()

        assert kernel.run(main) == 5.0

    def test_nondaemon_descendants_drain_before_run_returns(self, kernel):
        finished = []

        def late_worker():
            sleep(30)
            finished.append(kernel.now())

        def main():
            kernel.spawn(late_worker)  # non-daemon: run() must wait for it
            sleep(1)
            return "main-done"

        assert kernel.run(main) == "main-done"
        assert finished == [30.0]


class TestShutdown:
    def test_spawn_after_shutdown_rejected(self, kernel):
        kernel.run(lambda: None)
        with pytest.raises(KernelShutdownError):
            kernel.spawn(lambda: None)

    def test_now_still_readable_after_run(self, kernel):
        def main():
            sleep(17)

        kernel.run(main)
        assert kernel.now() == 17.0

    def test_tasks_alive_zero_after_run(self, kernel):
        def main():
            sleep(1)

        kernel.run(main)
        assert kernel.tasks_alive == 0

    def test_no_thread_leak(self):
        import threading

        before = threading.active_count()
        for _ in range(3):
            kernel = Kernel()

            def main():
                from repro.vtime import gather

                gather([kernel.spawn(lambda: sleep(5)) for _ in range(20)])

            kernel.run(main)
        # transient cleanup may lag by a thread or two, not by dozens
        assert threading.active_count() <= before + 3

    def test_shutdown_reclaims_pooled_workers(self):
        """After run() (which shuts down), no pool worker or loop thread
        survives — the pool is drained, not merely idled."""
        import threading

        from repro.vtime import gather, vsleep

        kernel = Kernel()

        def model_job():
            yield vsleep(3)

        def main():
            thread_tasks = [kernel.spawn(lambda: sleep(5)) for _ in range(12)]
            model_tasks = [kernel.spawn_model(model_job) for _ in range(12)]
            gather(thread_tasks + model_tasks)

        kernel.run(main)
        stats = kernel.thread_stats()
        assert stats["threads_created"] >= 1
        assert stats["live_threads"] == 0
        kernel_threads = [
            t
            for t in threading.enumerate()
            if t.name == "vloop" or t.name.startswith("vpool-")
        ]
        assert kernel_threads == []

    def test_explicit_shutdown_kills_blocked_daemons_and_loop(self):
        """shutdown() on a never-run kernel reclaims the model loop and
        unblocks daemon tasks parked on timers."""
        from repro.vtime import vsleep

        kernel = Kernel()

        def model_job():
            yield vsleep(10_000)

        task = kernel.spawn_model(model_job, daemon=True)
        kernel.shutdown()
        assert task.finished
        assert kernel.thread_stats()["live_threads"] == 0
        with pytest.raises(KernelShutdownError):
            kernel.spawn(lambda: None)
