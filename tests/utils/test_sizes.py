"""Unit + property tests for size parsing/formatting."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.sizes import format_size, parse_size


class TestParse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("1024", 1024),
            ("1KB", 1024),
            ("64MB", 64 * 1024**2),
            ("1.9GB", int(1.9 * 1024**3)),
            ("2tb", 2 * 1024**4),
            (" 8 MB ", 8 * 1024**2),
            ("100B", 100),
            ("0.5kb", 512),
        ],
    )
    def test_examples(self, text, expected):
        assert parse_size(text) == expected

    def test_ints_pass_through(self):
        assert parse_size(4096) == 4096
        assert parse_size(4096.7) == 4096

    @pytest.mark.parametrize("bad", ["", "abc", "12XB", "MB", "--5MB"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)


class TestFormat:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (1024, "1.0KB"),
            (64 * 1024**2, "64.0MB"),
            (int(1.9 * 1024**3), "1.9GB"),
        ],
    )
    def test_examples(self, nbytes, expected):
        assert format_size(nbytes) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-5)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_roundtrip_within_rounding(self, nbytes):
        """format then parse stays within 5% (one decimal of precision)."""
        recovered = parse_size(format_size(nbytes))
        assert abs(recovered - nbytes) <= max(64, nbytes * 0.05)
