"""Unit tests for id generation."""

from __future__ import annotations

from repro.utils.ids import new_executor_id, new_hex_id


class TestIds:
    def test_prefix_and_shape(self):
        ident = new_hex_id("job", seed=1)
        prefix, _, suffix = ident.partition("-")
        assert prefix == "job"
        assert len(suffix) == 8
        int(suffix, 16)  # hex

    def test_uniqueness(self):
        ids = {new_hex_id("x") for _ in range(1000)}
        assert len(ids) == 1000

    def test_executor_id_prefix(self):
        assert new_executor_id().startswith("exec-")

    def test_unique_even_with_same_seed(self):
        assert new_executor_id(seed=7) != new_executor_id(seed=7)

    def test_width_parameter(self):
        assert len(new_hex_id("p", width=16).split("-")[1]) == 16
