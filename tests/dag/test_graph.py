"""DagBuilder / Dag construction: handles, edges, levels, fusion."""

from __future__ import annotations

import pytest

from repro.dag import DagBuilder
from repro.dag.node import ARG_DEP, ARG_DEPS, ARG_FUTURES, ARG_VALUE


def inc(x):
    return x + 1


def double(x):
    return x * 2


def total(values):
    return sum(values)


class TestBuilder:
    def test_call_makes_value_node(self):
        builder = DagBuilder()
        node = builder.call(inc, 5)
        assert node.mode == ARG_VALUE
        assert node.value == 5
        assert node.fns == [inc]
        assert node.deps == []

    def test_call_on_node_chains(self):
        builder = DagBuilder()
        a = builder.call(inc, 1)
        b = builder.call(double, a)
        assert b.mode == ARG_DEP
        assert b.deps == [a]

    def test_then_chains(self):
        builder = DagBuilder()
        a = builder.call(inc, 1)
        b = a.then(double)
        assert b.deps == [a]
        assert b.fns == [double]

    def test_map_makes_one_node_per_item(self):
        builder = DagBuilder()
        nodes = builder.map(inc, [1, 2, 3])
        assert len(nodes) == 3
        assert [n.value for n in nodes] == [1, 2, 3]
        assert all(n.mode == ARG_VALUE for n in nodes)

    def test_reduce_collects_all_inputs(self):
        builder = DagBuilder()
        maps = builder.map(inc, [1, 2])
        red = builder.reduce(total, maps)
        assert red.mode == ARG_DEPS
        assert red.deps == maps

    def test_reduce_pass_futures_mode(self):
        builder = DagBuilder()
        maps = builder.map(inc, [1])
        red = builder.reduce(total, maps, pass_futures=True)
        assert red.mode == ARG_FUTURES

    def test_reduce_requires_inputs(self):
        builder = DagBuilder()
        with pytest.raises(ValueError):
            builder.reduce(total, [])

    def test_foreign_node_rejected(self):
        a = DagBuilder().call(inc, 1)
        other = DagBuilder()
        with pytest.raises(ValueError, match="different DagBuilder"):
            other.then(a, double)

    def test_build_only_once(self):
        builder = DagBuilder()
        builder.call(inc, 1)
        builder.build()
        with pytest.raises(ValueError):
            builder.build()
        with pytest.raises(ValueError):
            builder.call(inc, 2)


class TestLevelsAndFusion:
    def test_topological_levels(self):
        builder = DagBuilder()
        maps = builder.map(inc, [1, 2, 3])
        red = builder.reduce(total, maps)
        top = builder.reduce(total, [red, maps[0]])
        dag = builder.build(fuse=False)
        levels = dag.levels()
        assert [len(level) for level in levels] == [3, 1, 1]
        assert red.level == 1
        assert top.level == 2

    def test_linear_chain_fuses_to_one_node(self):
        builder = DagBuilder()
        node = builder.call(inc, 1).then(double).then(inc)
        dag = builder.build()
        assert len(dag.nodes) == 1
        fused = dag.nodes[0]
        assert fused is node
        assert fused.fns == [inc, double, inc]
        assert fused.mode == ARG_VALUE
        assert fused.value == 1

    def test_fusion_stops_at_fanout(self):
        builder = DagBuilder()
        a = builder.call(inc, 1)
        b = a.then(double)
        c = a.then(inc)  # a has two consumers: no fusion into b or c
        builder.reduce(total, [b, c])
        dag = builder.build()
        assert len(dag.nodes) == 4

    def test_fusion_respects_opt_out(self):
        builder = DagBuilder()
        node = builder.call(inc, 1, fusable=False).then(double, fusable=False)
        dag = builder.build()
        assert len(dag.nodes) == 2
        assert node.fns == [double]

    def test_build_fuse_false_keeps_chain(self):
        builder = DagBuilder()
        builder.call(inc, 1).then(double)
        dag = builder.build(fuse=False)
        assert len(dag.nodes) == 2

    def test_fused_reduce_tail(self):
        # reduce -> then fuses downward (the reduce is the chain head)
        builder = DagBuilder()
        maps = builder.map(inc, [1, 2])
        node = builder.reduce(total, maps).then(double)
        dag = builder.build()
        assert len(dag.nodes) == 3
        assert node.fns == [total, double]
        assert node.mode == ARG_DEPS

    def test_stage_names(self):
        builder = DagBuilder()
        a = builder.call(inc, 1, stage="ingest")
        b = a.then(double, fusable=False)
        dag = builder.build(fuse=False)
        assert dag.stage_name(a) == "ingest"
        assert dag.stage_name(b) == "stage1"
