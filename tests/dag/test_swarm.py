"""Swarm scheduling end-to-end: worker-driven handoffs, supervisor tail.

Centralized-mode behaviour (including its byte-identical traces) is
covered by ``test_scheduler.py`` and the pipeline bench; this file pins
the ``scheduler="swarm"`` opt-in — in-cloud fan-out, exactly-once
invocation, token-aware orphan grace, config plumbing, and the swarm
trace layer, plus the byte-pinned golden trace.
"""

from __future__ import annotations

import pathlib

import pytest

import repro as pw
from repro.config import DagConfig
from repro.core.environment import CloudEnvironment
from repro.dag import DagBuilder, DagScheduler

from tests.dag.swarm_golden_workload import GOLDEN_PATH, run_traced

GOLDEN = pathlib.Path(GOLDEN_PATH)


def inc(x):
    return x + 1


def double(x):
    return x * 2


def total(values):
    return sum(values)


def slow_merge(values):
    pw.sleep(12)  # longer than the default 8 s orphan grace
    return sum(values)


def _runner_activations(env):
    return [
        r
        for r in env.platform.activations()
        if r.action_name.startswith("pywren_runner")
    ]


def _build_diamond(builder):
    src = builder.call(inc, 1)                      # 2
    left = builder.call(double, src, fusable=False)  # 4
    right = builder.call(inc, src, fusable=False)    # 3
    return builder.reduce(total, [left, right])      # 7


def _build_chain(builder, depth):
    node = builder.call(inc, 0, fusable=False)
    for _ in range(depth - 1):
        node = node.then(inc, fusable=False)
    return node


class TestExecution:
    def test_diamond_matches_centralized(self, cloud):
        results = {}
        for mode in ("centralized", "swarm"):
            env = cloud()

            def main():
                executor = pw.ibm_cf_executor()
                builder = DagBuilder()
                top = _build_diamond(builder)
                run = builder.submit(executor, fuse=False, scheduler=mode)
                return run.expose(top).result()

            results[mode] = env.run(main)
        assert results["centralized"] == results["swarm"] == 7

    def test_chain_needs_one_client_invocation(self, env):
        """Every hop past the root is fired in-cloud by the finishing
        worker: the client's WAN gateway sees exactly one invocation."""

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            tail = _build_chain(builder, depth=5)
            run = builder.submit(executor, fuse=False, scheduler="swarm")
            value = run.expose(tail).result()
            return value, executor._functions.invocations

        value, client_invocations = env.run(main)
        assert value == 5
        assert client_invocations == 1
        assert len(_runner_activations(env)) == 5  # no duplicates either

    def test_fan_in_fires_every_node_exactly_once(self, env):
        """Two reduce levels: racing dependency completions decrement via
        done markers and exactly one worker wins each fire token."""

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            leaves = builder.map(inc, [1, 2, 3, 4])
            mid = [
                builder.reduce(total, leaves[:2]),
                builder.reduce(total, leaves[2:]),
            ]
            top = builder.reduce(total, mid)
            run = builder.submit(executor, scheduler="swarm")
            return run.expose(top).result()

        assert env.run(main) == 2 + 3 + 4 + 5
        assert len(_runner_activations(env)) == 7

    def test_long_running_node_is_not_redriven(self, env):
        """A claimed fire token stretches the orphan fuse: a node merely
        running longer than the grace must not be duplicated."""

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            leaves = builder.map(inc, [1, 2])
            top = builder.reduce(slow_merge, leaves)
            run = builder.submit(executor, scheduler="swarm")
            return run.expose(top).result()

        assert env.run(main) == 2 + 3
        assert len(_runner_activations(env)) == 3  # slow merge ran once

    def test_chain_lands_on_parent_invoker(self, env):
        """The handoff's placement hint points at the firing worker's own
        invoker, so chain hops reuse the warm container by the data."""

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            head = builder.call(inc, 1, fusable=False)
            tail = head.then(inc, fusable=False)
            run = builder.submit(executor, fuse=False, scheduler="swarm")
            run.expose(tail).result()
            return run.future(head).status(), run.future(tail).status()

        head_status, tail_status = env.run(main)
        assert tail_status["invoker_id"] == head_status["invoker_id"]
        assert tail_status["cold_start"] is False

    def test_external_dependency_stays_supervisor_fired(self, env):
        """Nodes consuming external futures are invisible to workers
        (no schedule entry can decrement them) — the supervisor drives
        them, and the run still completes under swarm."""

        def main():
            executor = pw.ibm_cf_executor()
            adopted = executor.call_async(inc, 10)  # plain executor call
            builder = DagBuilder()
            ext = builder.external(adopted)
            internal = builder.call(inc, 1, fusable=False)
            top = builder.reduce(total, [ext, internal])
            run = builder.submit(executor, fuse=False, scheduler="swarm")
            return run.expose(top).result()

        assert env.run(main) == 11 + 2


class TestConfig:
    def test_scheduler_resolves_from_dag_config(self, cloud):
        env = cloud(dag=DagConfig(scheduler="swarm"))

        def main():
            executor = pw.ibm_cf_executor()
            scheduler = DagScheduler(executor)
            builder = DagBuilder()
            tail = _build_chain(builder, depth=3)
            run = scheduler.submit(builder.build(fuse=False))
            value = run.expose(tail).result()
            return scheduler.scheduler, value, executor._functions.invocations

        mode, value, client_invocations = env.run(main)
        assert mode == "swarm"
        assert value == 3
        assert client_invocations == 1

    def test_explicit_argument_overrides_config(self, cloud):
        env = cloud(dag=DagConfig(scheduler="swarm"))

        def main():
            executor = pw.ibm_cf_executor()
            return DagScheduler(executor, scheduler="centralized").scheduler

        assert env.run(main) == "centralized"

    def test_invalid_scheduler_rejected(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            with pytest.raises(ValueError, match="scheduler"):
                DagScheduler(executor, scheduler="bogus")
            return True

        assert env.run(main) is True

    def test_dag_config_validation(self):
        with pytest.raises(ValueError, match="scheduler"):
            DagConfig(scheduler="bogus").validate()
        with pytest.raises(ValueError, match="orphan_grace_s"):
            DagConfig(orphan_grace_s=0).validate()
        with pytest.raises(ValueError, match="claimed_grace_factor"):
            DagConfig(claimed_grace_factor=0.5).validate()
        DagConfig(scheduler="swarm").validate()  # defaults are valid


class TestTracing:
    def _traced_chain(self, scheduler):
        env = CloudEnvironment.create(seed=123, trace=True)

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            tail = _build_chain(builder, depth=3)
            run = builder.submit(executor, fuse=False, scheduler=scheduler)
            run.expose(tail).result()
            return executor.executor_id, executor.trace_jsonl()

        executor_id, jsonl = env.run(main)
        return jsonl.replace(executor_id, "EXEC")

    def test_swarm_trace_has_swarm_layer_events(self):
        jsonl = self._traced_chain("swarm")
        assert '"swarm.ready"' in jsonl
        assert '"swarm.invoke"' in jsonl
        assert '"scheduler":"swarm"' in jsonl  # on the dag.submit point

    def test_centralized_trace_has_no_swarm_events(self):
        jsonl = self._traced_chain("centralized")
        assert '"swarm' not in jsonl
        assert '"scheduler"' not in jsonl

    def test_same_seed_swarm_traces_byte_identical(self):
        assert self._traced_chain("swarm") == self._traced_chain("swarm")


class TestGoldenSwarmTrace:
    def test_swarm_trace_matches_committed_golden(self):
        got = run_traced()
        want = GOLDEN.read_text(encoding="utf-8")
        assert want, "golden fixture missing or empty"
        # compare prefixes first for a readable diff on regression
        if got != want:
            for i, (a, b) in enumerate(zip(got.splitlines(), want.splitlines())):
                assert a == b, f"first divergence at trace line {i + 1}"
        assert got == want
