"""DAG rendering: DOT text, standalone SVG, and the CLI subcommand."""

from __future__ import annotations

from repro.__main__ import main as cli_main
from repro.dag import DagBuilder, render


def inc(x):
    return x + 1


def total(values):
    return sum(values)


def _diamond_dag():
    builder = DagBuilder()
    src = builder.call(inc, 1, name="src", stage="load")
    left = src.then(inc, name="left", fusable=False)
    right = src.then(inc, name="right", fusable=False)
    builder.reduce(total, [left, right], name="join", stage="merge")
    return builder.build(fuse=False)


class TestDot:
    def test_dot_has_nodes_and_edges(self):
        dag = _diamond_dag()
        dot = render.to_dot(dag)
        assert dot.startswith("digraph dag {")
        assert dot.rstrip().endswith("}")
        for name in ("src", "left", "right", "join"):
            assert name in dot
        # diamond: 2 edges out of src, 2 into join
        assert dot.count("->") == 4
        assert "rank=same" in dot

    def test_dot_quotes_special_characters(self):
        builder = DagBuilder()
        builder.call(inc, 1, name='say "hi"')
        dot = render.to_dot(builder.build())
        assert '\\"hi\\"' in dot

    def test_stage_labels_in_dot(self):
        dot = render.to_dot(_diamond_dag())
        assert "[load]" in dot
        assert "[merge]" in dot


class _Event:
    """Minimal stand-in for TraceEvent (layer / name / get_attr)."""

    def __init__(self, layer, name, **attrs):
        self.layer = layer
        self.name = name
        self._attrs = attrs

    def get_attr(self, key):
        return self._attrs.get(key)


class TestSwarmRender:
    def test_fused_chain_annotated_in_dot(self):
        builder = DagBuilder()
        node = builder.call(inc, 1, name="f0", stage="seq")
        node = node.then(inc, name="f1").then(inc, name="f2")
        dot = render.to_dot(builder.build(fuse=True))
        assert "⊕ fused ×3" in dot
        assert "peripheries=2" in dot
        # an unfused graph carries neither annotation
        plain = render.to_dot(_diamond_dag())
        assert "fused" not in plain and "peripheries" not in plain

    def test_fused_chain_annotated_in_svg(self):
        builder = DagBuilder()
        builder.call(inc, 1, name="f0").then(inc, name="f1")
        svg = render.to_svg(builder.build(fuse=True))
        assert 'stroke-width="2.5"' in svg
        assert "fused ×2" in svg

    def test_swarm_invoked_by_extracts_invoke_spans(self):
        events = [
            _Event("dag", "dag.node", node="noise"),
            _Event("swarm", "swarm.ready", node="join", by="left"),
            _Event("swarm", "swarm.invoke", node="join", by="left",
                   invoker_id=2),
        ]
        invoked = render.swarm_invoked_by(events)
        assert invoked == {"join": {"by": "left", "invoker_id": 2}}

    def test_invoked_by_colors_edges_by_site(self):
        dag = _diamond_dag()
        invoked = {"join": {"by": "left", "invoker_id": 2}}
        dot = render.to_dot(dag, invoked_by=invoked)
        lines = dot.splitlines()
        firing = [l for l in lines if "penwidth" in l]
        assert len(firing) == 1  # exactly one firing edge: left -> join
        assert 'label="inv2"' in firing[0]
        dashed = [l for l in lines if "dashed" in l]
        assert len(dashed) == 1  # the other in-edge of join: right -> join
        # both in-edges of join share the invoking site's color
        color = render._site_color(2)
        assert firing[0].count(color) == 2  # edge + label
        assert color in dashed[0]
        # edges into nodes the workers did not fire stay unstyled
        assert sum("->" in l and "[" not in l for l in lines) == 2


class TestSvg:
    def test_svg_is_well_formed_with_all_nodes(self):
        dag = _diamond_dag()
        svg = render.to_svg(dag)
        assert svg.startswith("<svg ")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") == len(dag.nodes) + 1  # + background
        assert svg.count("<line") == 4
        for name in ("src", "left", "right", "join"):
            assert name in svg

    def test_empty_dag_renders(self):
        svg = render.to_svg(DagBuilder().build())
        assert svg.startswith("<svg ")
        assert svg.endswith("</svg>")


class TestDescribe:
    def test_levels_and_deps_listed(self):
        text = render.describe(_diamond_dag())
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("level 0: ")
        assert "src" in lines[0]
        assert "join" in lines[2] and "(" in lines[2]


class TestCli:
    def test_render_mergesort_prints_dot(self, capsys):
        assert cli_main(["dag", "render", "--example", "mergesort"]) == 0
        out = capsys.readouterr().out
        assert "level 0:" in out
        assert "digraph dag {" in out

    def test_render_writes_dot_and_svg_files(self, tmp_path, capsys):
        dot_path = tmp_path / "dag.dot"
        svg_path = tmp_path / "dag.svg"
        code = cli_main(
            [
                "dag",
                "render",
                "--example",
                "wordcount",
                "--dot",
                str(dot_path),
                "--svg",
                str(svg_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert str(dot_path) in out and str(svg_path) in out
        assert dot_path.read_text().startswith("digraph dag {")
        assert svg_path.read_text().startswith("<svg ")

    def test_render_with_swarm_trace_reports_fired_nodes(self, capsys):
        import pathlib

        golden = pathlib.Path(__file__).parent / "golden_trace_swarm.jsonl"
        code = cli_main(
            [
                "dag",
                "render",
                "--example",
                "sequence",
                "--no-fuse",
                "--swarm-trace",
                str(golden),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # the golden workload reuses function names, so the five fired
        # nodes collapse to three distinct display names
        assert "swarm trace: 3 worker-fired nodes" in out
        assert "digraph dag {" in out

    def test_render_sequence_fuses(self, capsys):
        assert cli_main(["dag", "render", "--example", "sequence"]) == 0
        fused = capsys.readouterr().out
        assert cli_main(
            ["dag", "render", "--example", "sequence", "--no-fuse"]
        ) == 0
        unfused = capsys.readouterr().out
        assert fused.count("level") == 1
        assert unfused.count("level") == 3
