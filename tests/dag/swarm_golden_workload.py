"""The frozen workload behind the swarm scheduling golden trace.

``golden_trace_swarm.jsonl`` pins the full event stream — kernel, COS,
FaaS, dag *and* swarm layers — of one same-seed swarm-scheduled run: a
diamond feeding a short non-fusable chain, so the export covers both the
fan-in (marker + token) and the chain (token-only) handoff paths.  The
regression test re-runs the identical workload every test run and
asserts the export still matches the committed bytes.

Everything here must stay importable at the stable module path
``tests.dag.swarm_golden_workload`` so the shipped functions pickle by
reference with deterministic bytes; regenerate (only for an intentional,
documented behaviour change) with::

    PYTHONPATH=src:. python -c \
        "from tests.dag.swarm_golden_workload import write_golden; write_golden()"
"""

from __future__ import annotations

import os

SEED = 123
GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_trace_swarm.jsonl"
)


def inc(x):
    return x + 1


def double(x):
    return x * 2


def total(values):
    return sum(values)


EXPECTED = ((2 * 2) + (2 + 1)) * 2 + 1  # diamond -> double -> inc


def run_traced() -> str:
    """One traced same-seed swarm run; executor id normalized to EXEC."""
    import repro as pw
    from repro.core.environment import CloudEnvironment
    from repro.dag import DagBuilder

    env = CloudEnvironment.create(seed=SEED, trace=True)

    def main():
        executor = pw.ibm_cf_executor()
        builder = DagBuilder()
        src = builder.call(inc, 1)                    # 2
        left = builder.call(double, src, fusable=False)   # 4
        right = builder.call(inc, src, fusable=False)     # 3
        top = builder.reduce(total, [left, right])        # 7
        tail = top.then(double, fusable=False).then(inc, fusable=False)
        run = builder.submit(executor, fuse=False, scheduler="swarm")
        result = run.expose(tail).result()
        return result, executor.executor_id, executor.trace_jsonl()

    result, executor_id, jsonl = env.run(main)
    assert result == EXPECTED, "golden swarm workload result drifted"
    return jsonl.replace(executor_id, "EXEC")


def write_golden() -> str:
    """(Re)generate the committed golden trace.  Intentional changes only."""
    jsonl = run_traced()
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        fh.write(jsonl)
    print(f"wrote {GOLDEN_PATH} ({len(jsonl.splitlines())} events)")
    return GOLDEN_PATH
