"""DagScheduler end-to-end: barrier-free handoff, locality, failures."""

from __future__ import annotations

import pytest

import repro as pw
from repro.core.environment import CloudEnvironment
from repro.core.errors import FunctionError
from repro.dag import DagBuilder, DagScheduler, NodeState


def inc(x):
    return x + 1


def double(x):
    return x * 2


def total(values):
    return sum(values)


def staged_task(spec):
    pw.sleep(spec["sleep"])
    return spec["value"]


def relay(x):
    pw.sleep(2)
    return x


def boom(_x):
    raise RuntimeError("boom")


def flaky_once(x):
    """Fails on the first attempt, succeeds after (storage-backed marker)."""
    from repro.core import context as ambient

    environment = ambient.require_context().environment
    bucket = environment.config.storage_bucket
    if not environment.storage.object_exists(bucket, "flaky-marker"):
        environment.storage.put_object(bucket, "flaky-marker", b"1")
        raise RuntimeError("first attempt fails")
    return x + 100


def _runner_activations(env):
    return [
        r
        for r in env.platform.activations()
        if r.action_name.startswith("pywren_runner")
    ]


class TestExecution:
    def test_diamond(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            src = builder.call(inc, 1)              # 2
            left = builder.call(double, src)        # 4
            right = builder.call(inc, src)          # 3
            top = builder.reduce(total, [left, right])
            run = DagScheduler(executor).submit(builder.build())
            return run.expose(top).result()

        assert env.run(main) == 7

    def test_fused_chain_is_one_activation(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            node = builder.call(inc, 1).then(double).then(inc)
            run = DagScheduler(executor).submit(builder.build())
            return run.expose(node).result(), len(_runner_activations(env))

        result, n_activations = env.run(main)
        assert result == 5  # inc(1) -> double -> inc
        assert n_activations == 1

    def test_only_exposed_futures_register(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            maps = builder.map(inc, [1, 2, 3])
            top = builder.reduce(total, maps)
            run = DagScheduler(executor).submit(builder.build())
            future = run.expose(top)
            return future.result(), len(executor.futures)

        result, n_registered = env.run(main)
        assert result == 2 + 3 + 4
        assert n_registered == 1

    def test_empty_dag_finishes_immediately(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            run = DagScheduler(executor).submit(DagBuilder().build())
            assert run.finished
            return run.join(timeout=1.0)

        assert env.run(main) is True

    def test_barrier_free_stage_handoff(self, env):
        """A fast branch's stage 2 runs while the slow branch's stage 1
        is still executing — there is no client-side barrier per stage."""

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            fast1 = builder.call(staged_task, {"sleep": 2, "value": 1})
            fast2 = fast1.then(relay)
            slow1 = builder.call(staged_task, {"sleep": 40, "value": 2})
            slow2 = slow1.then(relay)
            run = DagScheduler(executor).submit(builder.build(fuse=False))
            run.expose(fast2)
            run.expose(slow2)
            executor.get_result()
            return (
                run.future(fast2).status(),
                run.future(slow1).status(),
            )

        fast2_status, slow1_status = env.run(main)
        assert fast2_status["start_time"] < slow1_status["end_time"]

    def test_locality_places_node_with_its_input(self, env):
        """A dependent lands on the invoker node whose warm container
        produced its input (the placement hint), not wherever round-robin
        points."""

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            a = builder.call(inc, 1)
            b = builder.call(inc, 2)  # warms a second container elsewhere
            follow = builder.reduce(total, [a])  # depends only on a
            run = DagScheduler(executor).submit(builder.build())
            run.future(follow).result()
            run.future(b).result()
            return run.future(a).status(), run.future(follow).status()

        a_status, follow_status = env.run(main)
        assert follow_status["invoker_id"] == a_status["invoker_id"]
        assert follow_status["cold_start"] is False

    def test_status_carries_invoker_id(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            future = executor.call_async(inc, 1)
            future.result()
            return future.status()

        status = env.run(main)
        assert isinstance(status["invoker_id"], int)


class TestFailureSemantics:
    def test_failed_node_buries_dependents(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            bad = builder.call(boom, 1, fusable=False)
            downstream = bad.then(inc, fusable=False)
            run = DagScheduler(executor).submit(builder.build(fuse=False))
            run.join()
            try:
                run.future(downstream).result()
            except FunctionError as exc:
                message = str(exc)
            else:
                message = None
            failed = {n.name for n in run.failed_nodes()}
            return message, failed, len(_runner_activations(env))

        message, failed, n_activations = env.run(main)
        assert message is not None and "upstream DAG node" in message
        assert failed == {"boom", "inc"}
        assert n_activations == 1  # the buried dependent never launched

    def test_failure_propagates_through_levels(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            good = builder.call(inc, 1)
            bad = builder.call(boom, 1)
            mid = builder.reduce(total, [good, bad])
            top = mid.then(double, fusable=False)
            run = DagScheduler(executor).submit(builder.build(fuse=False))
            run.join()
            results = {}
            for name, node in [("good", good), ("mid", mid), ("top", top)]:
                try:
                    results[name] = run.future(node).result()
                except FunctionError:
                    results[name] = "error"
            return results

        results = env.run(main)
        assert results["good"] == 2
        assert results["mid"] == "error"
        assert results["top"] == "error"

    def test_node_retries_rerun_failed_node(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            node = builder.call(flaky_once, 1)
            scheduler = DagScheduler(executor, node_retries=2)
            run = scheduler.submit(builder.build())
            # join() first: a result() wait racing the watcher can ingest
            # the transient error status before the retry resets it
            run.join()
            value = run.future(node).result()
            return value, node.error_attempts, executor.resilience_stats()

        value, attempts, stats = env.run(main)
        assert value == 101
        assert attempts == 1
        assert stats["invocation_retries"] >= 1

    def test_no_retries_by_default(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            node = builder.call(boom, 1)
            run = DagScheduler(executor).submit(builder.build())
            run.join()
            return node.state, node.error_attempts

        state, attempts = env.run(main)
        assert state == NodeState.FAILED
        assert attempts == 0


class TestDeterminism:
    def _trace_of_run(self, seed):
        env = CloudEnvironment.create(seed=seed, trace=True)

        def main():
            executor = pw.ibm_cf_executor()
            builder = DagBuilder()
            maps = builder.map(inc, [3, 1, 2])
            top = builder.reduce(total, maps).then(double, fusable=False)
            run = DagScheduler(executor).submit(builder.build(fuse=False))
            result = run.expose(top).result()
            return result, executor.executor_id, executor.trace_jsonl()

        result, executor_id, jsonl = env.run(main)
        # the executor id comes from a process-global counter, so it is the
        # one token that differs between two same-seed runs in one process
        return result, jsonl.replace(executor_id, "EXEC")

    def test_same_seed_runs_are_byte_identical(self):
        result_a, trace_a = self._trace_of_run(seed=42)
        result_b, trace_b = self._trace_of_run(seed=42)
        assert result_a == result_b == 2 * (4 + 2 + 3)
        assert trace_a == trace_b
        assert '"dag.node"' in trace_a
