"""Property test: the counter-decrement protocol fires exactly once.

The protocol under test is :func:`repro.dag.swarm.ready_dependents_steps`
— the generator every finishing worker runs against COS's append-once
primitive.  Here it runs against an in-memory twin of the conditional
store whose operations are the generator's yield points, so hypothesis
can schedule *arbitrary interleavings* of concurrent handoffs and kill
workers at any point mid-protocol.

Invariants, per drawn DAG + schedule + crash pattern:

* **no double-invoke** — across all concurrent, repeated, and partially
  crashed handoffs, each node is returned (won) by at most one caller;
* **no orphan** — every node either gets worker-invoked or is left
  dependency-complete with an unclaimed-or-unfired token, which the
  supervisor sweep (modelled after ``DagScheduler._redrive_orphans``)
  then picks up: afterwards every node has run exactly once.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dag.swarm import ready_dependents_steps


class MemoryConditionalStore:
    """In-memory twin of the swarm plane's conditional-PUT objects.

    Each operation yields once before touching state, giving the driver
    a preemption point between *deciding* to do an operation and the
    operation landing — the window where real workers race and crash.
    """

    def __init__(self) -> None:
        self.objects: set[tuple] = set()

    def _put_once(self, obj: tuple) -> bool:
        if obj in self.objects:
            return False
        self.objects.add(obj)
        return True

    def put_marker_steps(self, key, dep_key, payload):
        yield "put_marker"
        return self._put_once(("marker", key, dep_key))

    def count_markers_steps(self, key):
        yield "count_markers"
        return sum(
            1 for o in self.objects if o[0] == "marker" and o[1] == key
        )

    def claim_token_steps(self, key, payload):
        yield "claim_token"
        return self._put_once(("token", key))

    def token_claimed(self, key) -> bool:
        return ("token", key) in self.objects


def dags(draw) -> dict[str, dict]:
    """A random schedule: nodes ``n0..nK``, edges only forward."""
    n = draw(st.integers(min_value=1, max_value=10))
    nodes = {f"n{i}": {"dep_count": 0, "deps": [], "dependents": []}
             for i in range(n)}
    for i in range(1, n):
        parents = draw(
            st.sets(
                st.integers(min_value=0, max_value=i - 1),
                min_size=0,
                max_size=min(i, 3),
            )
        )
        for p in parents:
            nodes[f"n{p}"]["dependents"].append(f"n{i}")
            nodes[f"n{i}"]["deps"].append(f"n{p}")
            nodes[f"n{i}"]["dep_count"] += 1
    return nodes


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_every_node_fires_exactly_once_under_crashes(data):
    nodes = dags(data.draw)
    store = MemoryConditionalStore()
    worker_fired: dict[str, int] = {}   # node -> worker invocations
    completed: set[str] = set()         # nodes whose work finished
    invoked: set[str] = set()           # nodes some invocation reached
    # handoffs still runnable: node_key -> live generator
    handoffs: dict[str, object] = {}

    def invoke(key: str) -> None:
        assert key not in invoked, f"{key} invoked twice by workers"
        invoked.add(key)

    def start_handoff(done_key: str) -> None:
        completed.add(done_key)
        if nodes[done_key]["dependents"]:
            handoffs[done_key] = ready_dependents_steps(
                store, nodes, done_key, {"by": done_key}
            )

    # roots are client-invoked at submit; model them as already running
    runnable = [k for k, v in nodes.items() if v["dep_count"] == 0]
    for key in runnable:
        invoked.add(key)

    # -- chaos phase: hypothesis schedules completions, handoff steps,
    #    and crashes in any order it likes
    running = set(runnable)
    for _ in range(120):
        choices = []
        if running:
            choices.append("complete")
        if handoffs:
            choices.extend(["step", "crash"])
        if not choices:
            break
        action = data.draw(st.sampled_from(choices), label="action")
        if action == "complete":
            key = data.draw(
                st.sampled_from(sorted(running)), label="completing"
            )
            running.remove(key)
            start_handoff(key)
        else:
            key = data.draw(
                st.sampled_from(sorted(handoffs)), label="handoff"
            )
            if action == "crash":
                del handoffs[key]  # worker dies mid-protocol
                continue
            gen = handoffs[key]
            try:
                next(gen)
            except StopIteration as stop:
                del handoffs[key]
                for child in stop.value or []:
                    worker_fired[child] = worker_fired.get(child, 0) + 1
                    invoke(child)
                    running.add(child)

    # -- supervisor sweep: drive the surviving system to quiescence.
    #    Remaining live handoffs run to completion (no more crashes) and
    #    the supervisor re-drives any dependency-complete node that never
    #    produced a status — exactly _redrive_orphans after the grace.
    while True:
        for key in sorted(handoffs):
            gen = handoffs.pop(key)
            try:
                while True:
                    next(gen)
            except StopIteration as stop:
                for child in stop.value or []:
                    worker_fired[child] = worker_fired.get(child, 0) + 1
                    invoke(child)
                    running.add(child)
        for key in sorted(running):
            running.remove(key)
            start_handoff(key)
        if not running and not handoffs:
            orphans = [
                key
                for key, spec in nodes.items()
                if key not in completed
                and all(dep in completed for dep in spec["deps"])
            ]
            if not orphans:
                break
            for key in orphans:
                # never worker-invoked (crash before the token fired) or
                # invoked-then-lost; duplicate supervisor invocation is
                # absorbed by the at-most-once status commit
                invoked.add(key)
                running.add(key)

    # no double-invoke: at most one *worker* invocation per node (the
    # invoke() assertion also enforced this at fire time)
    assert all(count == 1 for count in worker_fired.values())
    # no orphan: with the supervisor tail, everything ran exactly once
    assert completed == set(nodes)
    assert invoked == set(nodes)
    # a root or supervisor-driven node must never also win a worker fire
    roots = {k for k, v in nodes.items() if v["dep_count"] == 0}
    assert not (roots & set(worker_fired))
