"""Tests for the SVG map renderer (the Fig. 5 substitute)."""

from __future__ import annotations

from repro.analytics import geoplot
from repro.analytics.tone import NEGATIVE, NEUTRAL, POSITIVE


def sample_points():
    return [
        (40.70, -74.00, POSITIVE),
        (40.75, -74.05, NEGATIVE),
        (40.72, -73.98, NEUTRAL),
    ]


class TestRenderCityMap:
    def test_valid_svg_document(self):
        svg = geoplot.render_city_map("new-york", sample_points())
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_one_circle_per_point(self):
        svg = geoplot.render_city_map("nyc", sample_points())
        assert svg.count("<circle") == 3

    def test_fig5_color_scheme(self):
        """Green = good, blue = neutral, red = bad."""
        svg = geoplot.render_city_map("nyc", sample_points())
        assert geoplot.TONE_COLORS[POSITIVE] in svg
        assert geoplot.TONE_COLORS[NEGATIVE] in svg
        assert geoplot.TONE_COLORS[NEUTRAL] in svg

    def test_title_includes_city_and_count(self):
        svg = geoplot.render_city_map("paris", sample_points())
        assert "paris" in svg
        assert "3 reviews" in svg

    def test_empty_points(self):
        svg = geoplot.render_city_map("ghost-town", [])
        assert svg.startswith("<svg")
        assert "<circle" not in svg

    def test_max_points_cap(self):
        points = [(40.0 + i * 0.001, -74.0, POSITIVE) for i in range(100)]
        svg = geoplot.render_city_map("nyc", points, max_points=10)
        assert svg.count("<circle") == 10

    def test_single_point_degenerate_extent(self):
        svg = geoplot.render_city_map("solo", [(40.0, -74.0, POSITIVE)])
        assert svg.count("<circle") == 1
        assert "nan" not in svg


class TestHistogram:
    def test_counts(self):
        hist = geoplot.tone_histogram(sample_points())
        assert hist == {POSITIVE: 1, NEUTRAL: 1, NEGATIVE: 1}

    def test_unknown_tone_ignored(self):
        hist = geoplot.tone_histogram([(0.0, 0.0, "weird")])
        assert sum(hist.values()) == 0
