"""Tests for the tone analyzer (the Watson substitute)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import tone
from repro.datasets.airbnb import NEGATIVE_WORDS, NEUTRAL_WORDS, POSITIVE_WORDS


class TestAnalyze:
    def test_positive_comment(self):
        result = tone.analyze("great clean amazing room near the metro")
        assert result.tone == tone.POSITIVE
        assert result.emotion == "joy"
        assert result.polarity > 0

    def test_negative_comment(self):
        result = tone.analyze("terrible dirty noisy awful street")
        assert result.tone == tone.NEGATIVE
        assert result.emotion == "anger"
        assert result.polarity < 0

    def test_neutral_comment(self):
        result = tone.analyze("room bed kitchen window floor")
        assert result.tone == tone.NEUTRAL
        assert result.polarity == 0.0

    def test_tie_is_neutral(self):
        result = tone.analyze("great terrible")
        assert result.tone == tone.NEUTRAL

    def test_empty_text(self):
        result = tone.analyze("")
        assert result.tone == tone.NEUTRAL
        assert result.word_count == 0
        assert result.polarity == 0.0

    def test_case_insensitive(self):
        assert tone.analyze("GREAT AMAZING").tone == tone.POSITIVE

    @settings(max_examples=50, deadline=None)
    @given(
        pos=st.integers(min_value=0, max_value=10),
        neg=st.integers(min_value=0, max_value=10),
        neutral=st.integers(min_value=0, max_value=10),
    )
    def test_counts_drive_classification(self, pos, neg, neutral):
        text = " ".join(
            [POSITIVE_WORDS[0]] * pos
            + [NEGATIVE_WORDS[0]] * neg
            + [NEUTRAL_WORDS[0]] * neutral
        )
        result = tone.analyze(text)
        if pos > neg:
            assert result.tone == tone.POSITIVE
        elif neg > pos:
            assert result.tone == tone.NEGATIVE
        else:
            assert result.tone == tone.NEUTRAL
        assert result.word_count == pos + neg + neutral


class TestToneStats:
    def test_add_and_dominant(self):
        stats = tone.ToneStats()
        stats.add(tone.analyze("great amazing"))
        stats.add(tone.analyze("lovely charming"))
        stats.add(tone.analyze("awful"))
        assert stats.comments == 3
        assert stats.dominant() == tone.POSITIVE

    def test_merge(self):
        a, b = tone.ToneStats(), tone.ToneStats()
        a.add(tone.analyze("great"))
        b.add(tone.analyze("terrible"))
        b.add(tone.analyze("awful"))
        a.merge(b)
        assert a.comments == 3
        assert a.counts[tone.NEGATIVE] == 2

    def test_scaled_extrapolation(self):
        stats = tone.ToneStats()
        for _ in range(10):
            stats.add(tone.analyze("great"))
        scaled = stats.scaled(3.5)
        assert scaled.counts[tone.POSITIVE] == 35
        assert scaled.comments == 35


class TestCsvAnalysis:
    def test_parses_lines_and_points(self):
        data = (
            b"40.7,-74.0,great amazing stay\n"
            b"40.8,-74.1,terrible dirty room\n"
        )
        stats, points = tone.analyze_csv_reviews(data)
        assert stats.comments == 2
        assert points[0] == (40.7, -74.0, tone.POSITIVE)
        assert points[1] == (40.8, -74.1, tone.NEGATIVE)

    def test_truncated_boundary_lines_skipped(self):
        data = b"74.0,great\n40.7,-74.0,lovely stay\n40.8,-74."
        stats, points = tone.analyze_csv_reviews(data)
        assert stats.comments == 1
        assert len(points) == 1

    def test_garbage_coordinates_skipped(self):
        data = b"abc,def,some text\n1.0,2.0,clean cozy\n"
        stats, _points = tone.analyze_csv_reviews(data)
        assert stats.comments == 1

    def test_empty_input(self):
        stats, points = tone.analyze_csv_reviews(b"")
        assert stats.comments == 0
        assert points == []

    def test_real_generated_content_classifies(self):
        from repro.datasets.airbnb import make_review_content_fn

        data = make_review_content_fn("paris")(0, 16384)
        stats, points = tone.analyze_csv_reviews(data)
        assert stats.comments > 5
        assert len(points) == stats.comments
        # the lexicon actually fires on the generated vocabulary
        assert stats.counts[tone.POSITIVE] + stats.counts[tone.NEGATIVE] > 0
