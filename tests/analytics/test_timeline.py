"""Tests for the execution-timeline renderer (Fig. 2/3 visuals)."""

from __future__ import annotations

import pytest

import repro as pw
from repro.analytics.timeline import (
    concurrency_timeline,
    intervals_from_records,
    render_execution_timeline,
)


class TestConcurrencyTimeline:
    def test_step_function(self):
        timeline = concurrency_timeline([(0, 4), (2, 6)], resolution=2.0)
        assert dict(timeline) == {0.0: 1, 2.0: 2, 4.0: 1, 6.0: 0}

    def test_origin_override(self):
        timeline = concurrency_timeline([(10, 12)], resolution=1.0, t0=8.0)
        assert timeline[0] == (0.0, 0)
        assert dict(timeline)[2.0] == 1

    def test_empty(self):
        assert concurrency_timeline([]) == []

    def test_peak_matches_overlap(self):
        intervals = [(0, 10)] * 7
        timeline = concurrency_timeline(intervals, resolution=1.0)
        assert max(level for _t, level in timeline) == 7

    def test_event_sweep_emits_exact_change_points(self):
        """One sample per level change, at the exact event times."""
        timeline = concurrency_timeline([(0, 4), (2, 6)])
        assert timeline == [(0.0, 1), (2.0, 2), (4.0, 1), (6.0, 0)]

    def test_no_grid_snapping_on_fractional_times(self):
        # fixed-step sampling would snap 1.05 to the resolution grid (and
        # accumulate float drift on long horizons); the sweep does not
        timeline = concurrency_timeline([(0.0, 1.05), (0.25, 7.3)], resolution=1.0)
        assert timeline == [(0.0, 1), (0.25, 2), (1.05, 1), (7.3, 0)]

    def test_events_before_origin_fold_into_first_sample(self):
        timeline = concurrency_timeline([(0, 10), (2, 4)], t0=3.0)
        assert timeline == [(0.0, 2), (1.0, 1), (7.0, 0)]

    def test_leading_zero_sample_when_origin_precedes_first_start(self):
        timeline = concurrency_timeline([(5, 6)], t0=0.0)
        assert timeline == [(0.0, 0), (5.0, 1), (6.0, 0)]

    def test_cost_scales_with_intervals_not_horizon(self):
        # a week-long horizon at 1s resolution would be ~600k samples under
        # fixed-step sampling; the sweep emits only the change points
        timeline = concurrency_timeline([(0.0, 604800.0)], resolution=1.0)
        assert timeline == [(0.0, 1), (604800.0, 0)]


class TestRenderTimeline:
    def test_svg_structure(self):
        svg = render_execution_timeline([(0, 10), (2, 12)], title="Test run")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "Test run (2 functions)" in svg
        assert svg.count("<line") >= 2 + 1  # rows + axis
        assert "<polyline" in svg  # the concurrency curve

    def test_peak_annotation(self):
        svg = render_execution_timeline([(0, 5), (1, 6), (2, 7)])
        assert "peak concurrency: 3" in svg

    def test_empty_intervals(self):
        svg = render_execution_timeline([])
        assert svg.startswith("<svg")
        assert "<polyline" not in svg

    def test_zero_span(self):
        svg = render_execution_timeline([(5.0, 5.0)])
        assert "nan" not in svg

    def test_title_is_xml_escaped(self):
        svg = render_execution_timeline(
            [(0, 1)], title='Trace <run> & "friends"'
        )
        assert "Trace &lt;run&gt; &amp;" in svg
        assert "<run>" not in svg

    def test_plain_title_unchanged(self):
        svg = render_execution_timeline([(0, 1)], title="Executor exec-1")
        assert "Executor exec-1 (1 functions)" in svg


class TestIntervalsFromRecords:
    def test_extracts_runner_intervals(self, env):
        def main():
            executor = pw.ibm_cf_executor()
            executor.get_result(executor.map(lambda x: x, [1, 2, 3]))
            return intervals_from_records(
                env.platform.activations(), action_prefix="pywren_runner"
            )

        intervals = env.run(main)
        assert len(intervals) == 3
        assert all(end >= start for start, end in intervals)

    def test_prefix_filters(self, env):
        def main():
            executor = pw.ibm_cf_executor(invoker_mode="massive")
            executor.get_result(executor.map(lambda x: x, [1, 2]))
            runners = intervals_from_records(
                env.platform.activations(), action_prefix="pywren_runner"
            )
            everything = intervals_from_records(env.platform.activations())
            return len(runners), len(everything)

        n_runners, n_all = env.run(main)
        assert n_runners == 2
        assert n_all > n_runners  # includes the remote invoker

    def test_end_to_end_svg_from_real_run(self, env):
        def main():
            executor = pw.ibm_cf_executor()

            def busy(x):
                pw.sleep(30)
                return x

            executor.get_result(executor.map(busy, list(range(5))))
            intervals = intervals_from_records(
                env.platform.activations(), action_prefix="pywren_runner"
            )
            return render_execution_timeline(intervals, title="5 x 30s")

        svg = env.run(main)
        assert "5 x 30s (5 functions)" in svg
        assert "peak concurrency: 5" in svg
