.PHONY: install test lint chaos bench bench-trace bench-kernel-scale bench-dag bench-dag-swarm bench-cache bench-resume bench-exchange bench-tenant-storm bench-workloads bench-workloads-smoke docs-check examples all clean

install:
	pip install -e . --no-build-isolation || \
	  echo "$(CURDIR)/src" > "$$(python3 -c 'import site; print(site.getsitepackages()[0])')/repro-editable.pth"

test:
	pytest tests/

# static checks; skips gracefully when ruff is not installed locally
lint:
	@command -v ruff >/dev/null 2>&1 \
	  && ruff check src tests benchmarks \
	  || echo "ruff not installed; skipping lint (pip install ruff)"

# fault-injection subset, exercised under two named chaos profiles
chaos:
	PYTHONPATH=src python -m pytest tests/integration/test_chaos.py -q -k "storm"
	PYTHONPATH=src python -m pytest tests/integration/test_chaos.py -q -k "flaky"

bench:
	pytest benchmarks/ --benchmark-only

# tracing overhead: same workload with the spine disabled vs enabled;
# writes BENCH_trace_overhead.json (acceptance: disabled adds <5%)
bench-trace:
	PYTHONPATH=src python benchmarks/bench_trace_overhead.py

# hybrid-scheduler scale runs (Fig. 3 shape at 2k/10k/50k concurrency);
# writes BENCH_kernel_scale.json (acceptance: 10k at full concurrency with
# peak OS threads < 2x the kernel pool, near-linear wall growth to 50k)
bench-kernel-scale:
	PYTHONPATH=src python benchmarks/bench_kernel_scale.py

# barriered executor vs barrier-free DAG scheduler on Fig. 4-shaped
# mergesort + shuffle wordcount; writes BENCH_dag_pipeline.json
# (acceptance: DAG wins mergesort wall-clock, same-seed traces identical)
bench-dag:
	PYTHONPATH=src python benchmarks/bench_dag_pipeline.py

# centralized vs worker-driven (swarm) DAG scheduling on the Fig. 4
# merge tree, a 100-level chain, and a wide-then-deep ML graph; writes
# BENCH_dag_swarm.json (acceptance: swarm wins the chain wall-clock with
# one client invocation total, no duplicate activations, same-seed swarm
# traces byte-identical)
bench-dag-swarm:
	PYTHONPATH=src python benchmarks/bench_dag_swarm.py

# COS-only vs memory-tier cached intermediate exchange on the Fig. 4
# mergesort + shuffle wordcount; writes BENCH_cache_exchange.json
# (acceptance: cached wins intermediate-read time, per-mode same-seed
# traces byte-identical)
bench-cache:
	PYTHONPATH=src python benchmarks/bench_cache_exchange.py

# exchange-backend matrix: shuffle volume x fan-out x backend (cos /
# cached-cos / vm); writes BENCH_exchange_matrix.json (acceptance: VM
# plane wins a large-volume cell on wall time, direct COS Pareto-wins a
# small cell, per-backend same-seed traces byte-identical)
bench-exchange:
	PYTHONPATH=src python benchmarks/bench_exchange_matrix.py

# weighted-fair dispatch vs first-come under a 200-tenant overload storm;
# writes BENCH_tenant_storm.json (acceptance: DRR Jain >= 0.9 with the
# first-come baseline clearly below, equal aggregate throughput)
bench-tenant-storm:
	PYTHONPATH=src python benchmarks/bench_tenant_storm.py

# BI/analytics workload suite: pushdown-scan sweep (selectivity x
# partitions x exchange backend) vs full-scan+client-filter, plus the
# windowed-streaming reuse sweep; writes BENCH_workloads.json
# (acceptance: pushdown wins wall and bytes at <=10% selectivity,
# overlapping windows reuse cached partials, same-seed scan and
# streaming traces byte-identical)
bench-workloads:
	PYTHONPATH=src python benchmarks/bench_workloads.py

# reduced matrix for CI; does not rewrite BENCH_workloads.json
bench-workloads-smoke:
	PYTHONPATH=src python benchmarks/bench_workloads.py --smoke

# event-journal overhead (off vs on, Fig. 3-shaped map) plus
# time-to-recover after a client crash; writes BENCH_resume_overhead.json
# (acceptance: journal enabled adds <5% executor wall-clock overhead)
bench-resume:
	PYTHONPATH=src python benchmarks/bench_resume_overhead.py

# documentation guards: no dead relative links in README/docs, every
# public repro.* symbol documented in docs/API.md
docs-check:
	PYTHONPATH=src python scripts/check_docs.py

examples:
	@for ex in examples/*.py; do echo "=== $$ex ==="; python3 $$ex; echo; done

all: test bench

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
