.PHONY: install test chaos bench examples all clean

install:
	pip install -e . --no-build-isolation || \
	  echo "$(CURDIR)/src" > "$$(python3 -c 'import site; print(site.getsitepackages()[0])')/repro-editable.pth"

test:
	pytest tests/

# fault-injection subset, exercised under two named chaos profiles
chaos:
	PYTHONPATH=src python -m pytest tests/integration/test_chaos.py -q -k "storm"
	PYTHONPATH=src python -m pytest tests/integration/test_chaos.py -q -k "flaky"

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for ex in examples/*.py; do echo "=== $$ex ==="; python3 $$ex; echo; done

all: test bench

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
