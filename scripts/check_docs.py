#!/usr/bin/env python3
"""Documentation guards, run by the CI docs job and `make docs-check`.

Four checks, all offline:

1. **Link check** — every relative markdown link in README.md and
   docs/*.md must resolve to a file (or directory) in the repository.
   External (http/https/mailto) and intra-page (#anchor) links are left
   alone; anchors on relative links are checked against the target file's
   headings.
2. **API coverage** — every public symbol in ``repro.__all__`` (parsed
   statically from ``src/repro/__init__.py``, no import needed) must be
   mentioned in docs/API.md.  New exports therefore fail CI until they
   are documented.
3. **Example coverage** — every ``examples/*.py`` must be referenced by
   name from at least one doc (README.md or docs/*.md).  New examples
   therefore fail CI until a doc says what they demonstrate.
4. **Bench report coverage** — every committed ``BENCH_*.json`` must be
   named in docs/PERFORMANCE.md, which explains what each number means.

Exits non-zero listing every violation.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
API_DOC = REPO / "docs" / "API.md"
PACKAGE_INIT = REPO / "src" / "repro" / "__init__.py"

# [text](target) — but not images' inner parens and not reference defs
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (close enough for our headings)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def check_links() -> list[str]:
    errors = []
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(REPO)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                anchors = {github_anchor(h) for h in HEADING_RE.findall(text)}
                if target[1:] not in anchors:
                    errors.append(f"{rel}: dead anchor {target!r}")
                continue
            path_part, _, fragment = target.partition("#")
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{rel}: dead link {target!r}")
                continue
            if fragment and resolved.suffix == ".md":
                other = resolved.read_text(encoding="utf-8")
                anchors = {github_anchor(h) for h in HEADING_RE.findall(other)}
                if fragment not in anchors:
                    errors.append(f"{rel}: dead anchor in link {target!r}")
    return errors


def public_symbols() -> list[str]:
    tree = ast.parse(PACKAGE_INIT.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return [ast.literal_eval(elt) for elt in node.value.elts]
    raise SystemExit(f"could not find __all__ in {PACKAGE_INIT}")


def check_api_coverage() -> list[str]:
    text = API_DOC.read_text(encoding="utf-8")
    rel = API_DOC.relative_to(REPO)
    errors = []
    for symbol in public_symbols():
        if not re.search(rf"(?<!\w){re.escape(symbol)}(?!\w)", text):
            errors.append(f"{rel}: public symbol {symbol!r} is undocumented")
    return errors


def check_example_references() -> list[str]:
    corpus = "\n".join(
        doc.read_text(encoding="utf-8") for doc in DOC_FILES
    )
    return [
        f"examples/{example.name}: not referenced from any doc"
        for example in sorted((REPO / "examples").glob("*.py"))
        if example.name not in corpus
    ]


def check_bench_reports() -> list[str]:
    performance = (REPO / "docs" / "PERFORMANCE.md").read_text(
        encoding="utf-8"
    )
    return [
        f"{report.name}: not mentioned in docs/PERFORMANCE.md"
        for report in sorted(REPO.glob("BENCH_*.json"))
        if report.name not in performance
    ]


def main() -> int:
    errors = (
        check_links()
        + check_api_coverage()
        + check_example_references()
        + check_bench_reports()
    )
    for error in errors:
        print(f"FAIL {error}")
    checked = ", ".join(str(d.relative_to(REPO)) for d in DOC_FILES)
    if errors:
        print(f"{len(errors)} documentation problem(s) in: {checked}")
        return 1
    print(
        "docs OK: links + API + example + bench-report coverage over "
        f"{checked}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
